//! DC engine integration tests: B-tree structure modifications, the
//! abLSN idempotence machinery, page-sync policies, DC restart and
//! TC-crash reset.

use std::sync::Arc;
use unbundled_core::{
    Key, LogicalOp, Lsn, OpResult, ReadFlavor, RequestId, TableId, TableSpec, TcId,
};
use unbundled_dc::{DcConfig, DcEngine, FlushResult, ResetMode, SyncPolicy};
use unbundled_storage::{LogStore, SimDisk};

const T: TableId = TableId(1);
const TC: TcId = TcId(1);

struct Fixture {
    disk: SimDisk,
    log: Arc<LogStore<unbundled_dc::DcLogRecord>>,
    engine: Arc<DcEngine>,
    next_lsn: u64,
}

impl Fixture {
    fn new(cfg: DcConfig) -> Fixture {
        let disk = SimDisk::new();
        let log = Arc::new(LogStore::new());
        let engine = DcEngine::format(unbundled_core::DcId(1), cfg, disk.clone(), log.clone());
        engine.create_table(TableSpec::plain(T, "t")).unwrap();
        Fixture {
            disk,
            log,
            engine,
            next_lsn: 0,
        }
    }

    fn small_pages() -> DcConfig {
        DcConfig {
            page_capacity: 256,
            merge_threshold: 64,
            ..DcConfig::default()
        }
    }

    fn lsn(&mut self) -> Lsn {
        self.next_lsn += 1;
        Lsn(self.next_lsn)
    }

    /// Insert and immediately mark the op stable/acked (simulating a TC
    /// that forces and acks eagerly), so SMOs are never deferred.
    fn insert(&mut self, k: u64, v: &[u8]) {
        let lsn = self.lsn();
        self.engine
            .perform(
                TC,
                RequestId::Op(lsn),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: v.to_vec(),
                },
            )
            .unwrap();
        self.engine.handle_eosl(TC, lsn);
        self.engine.handle_lwm(TC, lsn);
        // EOSL arrival retries any deferred SMO.
    }

    fn delete(&mut self, k: u64) {
        let lsn = self.lsn();
        self.engine
            .perform(
                TC,
                RequestId::Op(lsn),
                &LogicalOp::Delete {
                    table: T,
                    key: Key::from_u64(k),
                },
            )
            .unwrap();
        self.engine.handle_eosl(TC, lsn);
        self.engine.handle_lwm(TC, lsn);
    }

    fn read(&self, k: u64) -> Option<Vec<u8>> {
        match self
            .engine
            .perform(
                TC,
                RequestId::Read(k),
                &LogicalOp::Read {
                    table: T,
                    key: Key::from_u64(k),
                    flavor: ReadFlavor::Latest,
                },
            )
            .unwrap()
        {
            OpResult::Value(v) => v,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn reboot(&mut self) {
        self.engine.crash_volatile();
        self.engine = DcEngine::recover(
            unbundled_core::DcId(1),
            self.engine.cfg.clone(),
            self.disk.clone(),
            self.log.clone(),
        );
    }
}

#[test]
fn many_inserts_cause_splits_and_stay_searchable() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..500u64 {
        fx.insert(k, format!("value-{k}").as_bytes());
    }
    assert!(
        fx.engine.stats().snapshot().splits > 5,
        "small pages must split"
    );
    fx.engine.check_tree(T);
    for k in (0..500).step_by(7) {
        assert_eq!(fx.read(k), Some(format!("value-{k}").into_bytes()));
    }
    let rows = fx.engine.dump_table(T).unwrap();
    assert_eq!(rows.len(), 500);
}

#[test]
fn random_order_inserts_keep_sorted_order() {
    let mut fx = Fixture::new(Fixture::small_pages());
    let mut keys: Vec<u64> = (0..300).map(|i| (i * 7919) % 1000).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut shuffled = keys.clone();
    // deterministic shuffle
    for i in (1..shuffled.len()).rev() {
        let j = (i * 2654435761) % (i + 1);
        shuffled.swap(i, j);
    }
    for k in shuffled {
        fx.insert(k, b"x");
    }
    fx.engine.check_tree(T);
    let rows = fx.engine.dump_table(T).unwrap();
    let got: Vec<u64> = rows.iter().map(|(k, _)| k.as_u64().unwrap()).collect();
    assert_eq!(got, keys);
}

#[test]
fn deletes_trigger_consolidation() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..400u64 {
        fx.insert(k, b"0123456789abcdef");
    }
    let splits = fx.engine.stats().snapshot().splits;
    assert!(splits > 0);
    for k in 0..390u64 {
        fx.delete(k);
    }
    fx.engine.check_tree(T);
    assert!(
        fx.engine.stats().snapshot().consolidations > 0,
        "mass deletion must consolidate pages"
    );
    let rows = fx.engine.dump_table(T).unwrap();
    assert_eq!(rows.len(), 10);
}

#[test]
fn duplicate_lsn_suppressed_after_split_moves_key() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..200u64 {
        fx.insert(k, b"0123456789");
    }
    // Re-deliver an early operation: its key has long since moved to a
    // different page via splits, but the abLSN was carried along.
    let r = fx
        .engine
        .perform(
            TC,
            RequestId::Op(Lsn(150)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(149),
                value: b"0123456789".to_vec(),
            },
        )
        .unwrap();
    assert_eq!(r, OpResult::Done);
    let snap = fx.engine.stats().snapshot();
    assert!(
        snap.duplicates_suppressed >= 1,
        "resend must be suppressed, got {snap:?}"
    );
    // Value unchanged.
    assert_eq!(fx.read(149), Some(b"0123456789".to_vec()));
}

#[test]
fn out_of_order_delivery_is_exactly_once() {
    let fx = Fixture::new(DcConfig::default());
    // Deliver LSNs out of order: 2 before 1 (different keys — the TC
    // never sends conflicting ops concurrently).
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(2)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(2),
                value: b"b".to_vec(),
            },
        )
        .unwrap();
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"a".to_vec(),
            },
        )
        .unwrap();
    let snap = fx.engine.stats().snapshot();
    assert_eq!(
        snap.out_of_order, 1,
        "LSN 1 arrived after LSN 2 on the same page"
    );
    // Replays of both are suppressed.
    for l in [1u64, 2] {
        fx.engine
            .perform(
                TC,
                RequestId::Op(Lsn(l)),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(l),
                    value: b"x".to_vec(),
                },
            )
            .unwrap();
    }
    assert_eq!(fx.engine.stats().snapshot().duplicates_suppressed, 2);
    assert_eq!(fx.read(1), Some(b"a".to_vec()));
    assert_eq!(fx.read(2), Some(b"b".to_vec()));
}

#[test]
fn naive_scalar_lsn_would_lose_the_out_of_order_op() {
    // Demonstrates the paper's Section 5.1.1 failure case: with a scalar
    // page LSN, delivering LSN 2 then LSN 1 makes the classic test treat
    // LSN 1 as already applied. The abLSN must not.
    let fx = Fixture::new(DcConfig::default());
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(2)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(2),
                value: b"b".to_vec(),
            },
        )
        .unwrap();
    // abLSN after applying only LSN 2: max_included = 2, but 1 is NOT
    // included — the scalar test (1 <= 2) would wrongly skip it.
    let r = fx
        .engine
        .perform(
            TC,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"a".to_vec(),
            },
        )
        .unwrap();
    assert_eq!(r, OpResult::Done);
    assert_eq!(
        fx.engine.stats().snapshot().ops_applied,
        2,
        "both ops must apply"
    );
}

#[test]
fn flush_blocked_until_eosl_covers_page() {
    let fx = Fixture::new(DcConfig::default());
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"a".to_vec(),
            },
        )
        .unwrap();
    // Find the (single) leaf: it is dirty and uncovered by EOSL.
    let dirty: Vec<_> = fx
        .engine
        .pool()
        .cached_ids()
        .into_iter()
        .filter(|pid| {
            fx.engine
                .pool()
                .get_cached(*pid)
                .map(|a| a.read().dirty)
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(dirty.len(), 1);
    assert_eq!(
        fx.engine.flush_page(dirty[0]),
        FlushResult::NotEligible,
        "WAL/causality gate"
    );
    fx.engine.handle_eosl(TC, Lsn(1));
    assert_eq!(fx.engine.flush_page(dirty[0]), FlushResult::Flushed);
}

#[test]
fn sync_policy_wait_for_lwm_blocks_until_pruned() {
    let cfg = DcConfig {
        sync_policy: SyncPolicy::WaitForLwm,
        ..Default::default()
    };
    let fx = Fixture::new(cfg);
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"a".to_vec(),
            },
        )
        .unwrap();
    fx.engine.handle_eosl(TC, Lsn(1));
    let pid = fx
        .engine
        .pool()
        .cached_ids()
        .into_iter()
        .find(|p| {
            fx.engine
                .pool()
                .get_cached(*p)
                .map(|a| a.read().dirty)
                .unwrap_or(false)
        })
        .unwrap();
    // EOSL covers the op but the in-set is non-empty: policy 1 refuses.
    assert_eq!(fx.engine.flush_page(pid), FlushResult::NotEligible);
    assert!(fx.engine.stats().snapshot().flush_waits >= 1);
    // LWM catches up → in-set collapses → flush proceeds.
    fx.engine.handle_lwm(TC, Lsn(1));
    assert_eq!(fx.engine.flush_page(pid), FlushResult::Flushed);
}

#[test]
fn sync_policy_full_ablsn_never_waits() {
    let fx = Fixture::new(DcConfig::default()); // FullAbLsn default
    fx.engine
        .perform(
            TC,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"a".to_vec(),
            },
        )
        .unwrap();
    fx.engine.handle_eosl(TC, Lsn(1));
    // No LWM sent: the full abLSN (lw=0, ins=[1]) is written with the page.
    assert_eq!(fx.engine.flush_all(), 1);
    assert_eq!(fx.engine.stats().snapshot().flush_waits, 0);
}

#[test]
fn dc_crash_loses_cache_recovery_replays_systxns() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..300u64 {
        fx.insert(k, format!("v{k}").as_bytes());
    }
    // Make everything stable, then crash and recover.
    fx.log.force();
    assert!(fx.engine.flush_all() > 0);
    let before = fx.engine.snapshot_tables();
    fx.reboot();
    fx.engine.check_tree(T);
    let after = fx.engine.snapshot_tables();
    assert_eq!(
        before, after,
        "recovered state must equal pre-crash stable state"
    );
}

#[test]
fn dc_crash_with_unflushed_pages_recovers_structure_for_redo() {
    // Split happened (systxn logged + forced via consolidation path? No —
    // we force explicitly), pages never flushed: recovery must rebuild
    // the tree from the DC log so TC redo can be re-applied.
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..200u64 {
        fx.insert(k, format!("v{k}").as_bytes());
    }
    fx.log.force(); // systxns stable, data pages NOT flushed
    fx.reboot();
    fx.engine.check_tree(T);
    // The tree shape exists; records on never-flushed pages are missing
    // except those captured in split images. Redo (resends) restores all.
    let mut lsn = 0u64;
    for k in 0..200u64 {
        lsn += 1;
        fx.engine
            .perform(
                TC,
                RequestId::Op(Lsn(lsn)),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: format!("v{k}").into_bytes(),
                },
            )
            .map(|_| ())
            .or_else(|e| match e {
                // replays of ops whose effects survived in images
                unbundled_core::DcError::DuplicateKey(..) => Ok(()),
                other => Err(other),
            })
            .unwrap();
    }
    fx.engine.check_tree(T);
    let rows = fx.engine.dump_table(T).unwrap();
    assert_eq!(rows.len(), 200);
    for (k, v) in rows {
        assert_eq!(v, format!("v{}", k.as_u64().unwrap()).into_bytes());
    }
}

#[test]
fn tc_crash_reset_drops_exactly_lost_operations() {
    let mut fx = Fixture::new(DcConfig::default());
    // Stable ops 1..=10.
    for k in 1..=10u64 {
        fx.insert(k, b"stable");
    }
    let stable_end = Lsn(fx.next_lsn);
    // Lost ops (11..): TC will crash before forcing these.
    for k in 11..=15u64 {
        let lsn = fx.lsn();
        fx.engine
            .perform(
                TC,
                RequestId::Op(lsn),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: b"lost".to_vec(),
                },
            )
            .unwrap();
        // no EOSL/LWM: unstable
    }
    let (pages, _recs) = fx.engine.reset_for_tc(TC, stable_end);
    assert!(pages >= 1, "the page with lost ops must be reset");
    // Lost inserts vanished. Stable-but-unflushed ones are *also* gone
    // from the cache (the page reverted to its stable basis) — that is
    // the paper's protocol: redo resend from the RSSP restores them.
    for k in 11..=15u64 {
        assert_eq!(fx.read(k), None, "lost op {k} must be gone");
    }
    // Redo: the TC resends everything on its stable log from the redo
    // scan start point (here: all of 1..=10).
    for k in 1..=10u64 {
        let r = fx
            .engine
            .perform(
                TC,
                RequestId::Op(Lsn(k)),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: b"stable".to_vec(),
                },
            )
            .unwrap();
        assert_eq!(r, OpResult::Done);
    }
    for k in 1..=10u64 {
        assert_eq!(fx.read(k), Some(b"stable".to_vec()));
    }
    // The abLSN no longer claims the lost LSNs: new ops reuse them.
    for k in 11..=12u64 {
        let r = fx
            .engine
            .perform(
                TC,
                RequestId::Op(Lsn(stable_end.0 + k - 10)),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: b"redo".to_vec(),
                },
            )
            .unwrap();
        assert_eq!(r, OpResult::Done);
        assert_eq!(fx.read(k), Some(b"redo".to_vec()));
    }
}

#[test]
fn selective_reset_preserves_other_tcs_records() {
    let cfg = DcConfig {
        reset_mode: ResetMode::Selective,
        ..Default::default()
    };
    let fx = Fixture::new(cfg);
    let tc1 = TcId(1);
    let tc2 = TcId(2);
    // TC1 (stable) and TC2 (stable prefix) interleave on one page.
    fx.engine
        .perform(
            tc1,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(1),
                value: b"tc1".to_vec(),
            },
        )
        .unwrap();
    fx.engine.handle_eosl(tc1, Lsn(1));
    fx.engine
        .perform(
            tc2,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(100),
                value: b"tc2-stable".to_vec(),
            },
        )
        .unwrap();
    fx.engine.handle_eosl(tc2, Lsn(1));
    // TC2 loses this one (never forced):
    fx.engine
        .perform(
            tc2,
            RequestId::Op(Lsn(2)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(101),
                value: b"tc2-lost".to_vec(),
            },
        )
        .unwrap();
    let (pages, _) = fx.engine.reset_for_tc(tc2, Lsn(1));
    assert_eq!(pages, 1);
    // TC1's cached (unflushed!) record survives selective reset.
    let r1 = fx
        .engine
        .perform(
            tc1,
            RequestId::Read(1),
            &LogicalOp::Read {
                table: T,
                key: Key::from_u64(1),
                flavor: ReadFlavor::Latest,
            },
        )
        .unwrap();
    assert_eq!(r1, OpResult::Value(Some(b"tc1".to_vec())));
    // TC2's lost record is gone…
    let r2 = fx
        .engine
        .perform(
            tc2,
            RequestId::Read(2),
            &LogicalOp::Read {
                table: T,
                key: Key::from_u64(101),
                flavor: ReadFlavor::Latest,
            },
        )
        .unwrap();
    assert_eq!(r2, OpResult::Value(None));
    // …but wait: TC2's *stable* record was never flushed either. It must
    // survive the reset (only ops beyond the stable log are lost).
    let r3 = fx
        .engine
        .perform(
            tc2,
            RequestId::Read(3),
            &LogicalOp::Read {
                table: T,
                key: Key::from_u64(100),
                flavor: ReadFlavor::Latest,
            },
        )
        .unwrap();
    assert_eq!(
        r3,
        OpResult::Value(None),
        "stable-but-unflushed records need redo resend"
    );
    // The TC re-sends it during redo (it is on the stable log):
    let r4 = fx
        .engine
        .perform(
            tc2,
            RequestId::Op(Lsn(1)),
            &LogicalOp::Insert {
                table: T,
                key: Key::from_u64(100),
                value: b"tc2-stable".to_vec(),
            },
        )
        .unwrap();
    assert_eq!(r4, OpResult::Done);
}

#[test]
fn eviction_respects_pool_capacity() {
    let mut cfg = Fixture::small_pages();
    cfg.pool_capacity = 4;
    let mut fx = Fixture::new(cfg);
    for k in 0..300u64 {
        fx.insert(k, b"0123456789abcdef");
    }
    assert!(
        fx.engine.pool().len() <= 6,
        "pool stays near capacity, got {}",
        fx.engine.pool().len()
    );
    assert!(fx.engine.stats().snapshot().evictions > 0);
    // Everything still readable (faulted back in from disk).
    for k in (0..300).step_by(17) {
        assert_eq!(fx.read(k), Some(b"0123456789abcdef".to_vec()));
    }
}

#[test]
fn scans_and_probes() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in (0..100u64).map(|i| i * 2) {
        fx.insert(k, format!("{k}").as_bytes());
    }
    let r = fx
        .engine
        .perform(
            TC,
            RequestId::Read(1),
            &LogicalOp::ScanRange {
                table: T,
                low: Key::from_u64(10),
                high: Some(Key::from_u64(30)),
                limit: None,
                flavor: ReadFlavor::Latest,
            },
        )
        .unwrap();
    match r {
        OpResult::Entries(e) => {
            let keys: Vec<u64> = e.iter().map(|(k, _)| k.as_u64().unwrap()).collect();
            assert_eq!(keys, vec![10, 12, 14, 16, 18, 20, 22, 24, 26, 28]);
        }
        other => panic!("unexpected {other:?}"),
    }
    let r = fx
        .engine
        .perform(
            TC,
            RequestId::Read(2),
            &LogicalOp::ProbeKeys {
                table: T,
                from: Key::from_u64(91),
                count: 3,
            },
        )
        .unwrap();
    match r {
        OpResult::Keys(keys) => {
            let ks: Vec<u64> = keys.iter().map(|k| k.as_u64().unwrap()).collect();
            assert_eq!(ks, vec![92, 94, 96]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn dc_checkpoint_truncates_log_when_clean() {
    let mut fx = Fixture::new(Fixture::small_pages());
    for k in 0..200u64 {
        fx.insert(k, b"0123456789");
    }
    assert!(fx.log.last_seq() > 0);
    assert!(fx.engine.dc_checkpoint());
    assert_eq!(
        fx.log.live_bytes(),
        0,
        "clean cache ⇒ DC log fully truncated"
    );
    // Still recoverable afterwards.
    fx.reboot();
    fx.engine.check_tree(T);
    assert_eq!(fx.engine.dump_table(T).unwrap().len(), 200);
}

#[test]
fn versioned_table_lifecycle() {
    let fx = Fixture::new(DcConfig::default());
    let vt = TableId(9);
    fx.engine
        .create_table(TableSpec::versioned(vt, "reviews"))
        .unwrap();
    let owner = TcId(1);
    let reader = TcId(2);
    let key = Key::from_u64(1);
    // Uncommitted insert: invisible to read-committed, visible dirty.
    fx.engine
        .perform(
            owner,
            RequestId::Op(Lsn(1)),
            &LogicalOp::VersionedWrite {
                table: vt,
                key: key.clone(),
                value: b"draft".to_vec(),
            },
        )
        .unwrap();
    let rc = fx
        .engine
        .perform(
            reader,
            RequestId::Read(1),
            &LogicalOp::Read {
                table: vt,
                key: key.clone(),
                flavor: ReadFlavor::Committed,
            },
        )
        .unwrap();
    assert_eq!(
        rc,
        OpResult::Value(None),
        "read committed must not see the draft"
    );
    let dirty = fx
        .engine
        .perform(
            reader,
            RequestId::Read(2),
            &LogicalOp::Read {
                table: vt,
                key: key.clone(),
                flavor: ReadFlavor::Latest,
            },
        )
        .unwrap();
    assert_eq!(
        dirty,
        OpResult::Value(Some(b"draft".to_vec())),
        "dirty read sees it"
    );
    // Commit: promote.
    fx.engine
        .perform(
            owner,
            RequestId::Op(Lsn(2)),
            &LogicalOp::PromoteVersion {
                table: vt,
                key: key.clone(),
            },
        )
        .unwrap();
    let rc = fx
        .engine
        .perform(
            reader,
            RequestId::Read(3),
            &LogicalOp::Read {
                table: vt,
                key: key.clone(),
                flavor: ReadFlavor::Committed,
            },
        )
        .unwrap();
    assert_eq!(rc, OpResult::Value(Some(b"draft".to_vec())));
    // Update + abort: revert restores the committed version.
    fx.engine
        .perform(
            owner,
            RequestId::Op(Lsn(3)),
            &LogicalOp::VersionedWrite {
                table: vt,
                key: key.clone(),
                value: b"edit".to_vec(),
            },
        )
        .unwrap();
    fx.engine
        .perform(
            owner,
            RequestId::Op(Lsn(4)),
            &LogicalOp::RevertVersion {
                table: vt,
                key: key.clone(),
            },
        )
        .unwrap();
    let rc = fx
        .engine
        .perform(
            reader,
            RequestId::Read(4),
            &LogicalOp::Read {
                table: vt,
                key,
                flavor: ReadFlavor::Committed,
            },
        )
        .unwrap();
    assert_eq!(rc, OpResult::Value(Some(b"draft".to_vec())));
}

#[test]
fn smo_deferred_until_eosl_covers_page() {
    let mut cfg = Fixture::small_pages();
    cfg.page_capacity = 128;
    let fx = Fixture::new(cfg);
    // Insert enough to overflow, but never advance EOSL: the split must
    // be deferred (elastic page) because its image would capture
    // unstable operations.
    let mut lsn = 0u64;
    for k in 0..40u64 {
        lsn += 1;
        fx.engine
            .perform(
                TC,
                RequestId::Op(Lsn(lsn)),
                &LogicalOp::Insert {
                    table: T,
                    key: Key::from_u64(k),
                    value: b"0123456789".to_vec(),
                },
            )
            .unwrap();
    }
    assert_eq!(
        fx.engine.stats().snapshot().splits,
        0,
        "split must wait for EOSL"
    );
    // EOSL arrives → deferred SMO executes.
    fx.engine.handle_eosl(TC, Lsn(lsn));
    assert!(
        fx.engine.stats().snapshot().splits > 0,
        "EOSL must release the deferred split"
    );
    fx.engine.check_tree(T);
}
