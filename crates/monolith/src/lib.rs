//! # unbundled-monolith
//!
//! The **bundled** baseline: a traditional integrated storage engine in
//! which lock manager, log manager, buffer pool and the access method
//! are one component — the architecture the paper unbundles. It exists
//! so the experiments can compare code paths (Section 7: "our unbundling
//! approach inevitably has longer code paths") and recovery behaviour.
//!
//! Classic choices that the unbundled kernel *cannot* make are exercised
//! deliberately:
//! * **physiological logging** — every log record names the page it
//!   applies to (Section 1.2: exactly what the TC cannot do);
//! * **scalar page LSNs** — the LSN is assigned while the page is
//!   latched, so the traditional `operation LSN <= page LSN` idempotence
//!   test is sound (Section 5.1.1);
//! * single-component failure: log and cache fail together
//!   (Section 5.3.1).

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unbundled_core::codec::{Decoder, Encoder};
use unbundled_core::{DcError, Key, Lsn, PageId, TableId, TcError, TxnId};
use unbundled_lockmgr::{LockError, LockManager, LockMode, LockName, LockToken};
use unbundled_storage::{LogStore, SimDisk};

/// Record-level action inside a physiological log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RecAction {
    /// Insert `key = value`.
    Insert {
        /// Record key.
        key: Key,
        /// Payload.
        value: Vec<u8>,
    },
    /// Update `key` to `value` (prior payload retained for undo).
    Update {
        /// Record key.
        key: Key,
        /// New payload.
        value: Vec<u8>,
        /// Prior payload (undo).
        prior: Vec<u8>,
    },
    /// Delete `key` (prior payload retained for undo).
    Delete {
        /// Record key.
        key: Key,
        /// Prior payload (undo).
        prior: Vec<u8>,
    },
}

/// Integrated-engine log records: note the page ids everywhere.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonoLogRecord {
    /// Transaction start.
    Begin {
        /// Transaction.
        txn: TxnId,
    },
    /// Physiological record operation on one page.
    RecOp {
        /// Transaction.
        txn: TxnId,
        /// Table.
        table: TableId,
        /// Page the action applies to.
        page: PageId,
        /// The action.
        action: RecAction,
        /// Compensation record (redo-only, skipped by undo).
        redo_only: bool,
    },
    /// Structure modification: physical images of the affected pages and
    /// the new directory entry (nested-top-action analogue).
    Smo {
        /// Table.
        table: TableId,
        /// `(page, low fence, encoded entries)` images.
        images: Vec<(PageId, Key, Vec<u8>)>,
    },
    /// Commit (forced).
    Commit {
        /// Transaction.
        txn: TxnId,
    },
    /// Abort (after compensation records).
    Abort {
        /// Transaction.
        txn: TxnId,
    },
    /// Checkpoint: redo scan start point.
    Checkpoint {
        /// Redo scan start point.
        rssp: Lsn,
    },
}

impl MonoLogRecord {
    fn encoded_size(&self) -> usize {
        match self {
            MonoLogRecord::Begin { .. }
            | MonoLogRecord::Commit { .. }
            | MonoLogRecord::Abort { .. } => 17,
            MonoLogRecord::Checkpoint { .. } => 17,
            MonoLogRecord::RecOp { action, .. } => {
                25 + match action {
                    RecAction::Insert { key, value } => key.len() + value.len(),
                    RecAction::Update { key, value, prior } => {
                        key.len() + value.len() + prior.len()
                    }
                    RecAction::Delete { key, prior } => key.len() + prior.len(),
                }
            }
            MonoLogRecord::Smo { images, .. } => {
                17 + images
                    .iter()
                    .map(|(_, k, v)| 12 + k.len() + v.len())
                    .sum::<usize>()
            }
        }
    }
}

struct MonoPage {
    id: PageId,
    table: TableId,
    low: Key,
    /// Scalar page LSN — sound here because LSNs are assigned under the
    /// page latch.
    lsn: Lsn,
    entries: Vec<(Key, Vec<u8>)>,
    dirty: bool,
}

impl MonoPage {
    fn bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| 8 + k.len() + v.len())
            .sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.id.0);
        e.u32(self.table.0);
        e.bytes(self.low.as_bytes());
        e.u64(self.lsn.0);
        e.u32(self.entries.len() as u32);
        for (k, v) in &self.entries {
            e.bytes(k.as_bytes());
            e.bytes(v);
        }
        e.finish()
    }

    fn decode(buf: &[u8]) -> Option<MonoPage> {
        let mut d = Decoder::new(buf);
        let id = PageId(d.u64().ok()?);
        let table = TableId(d.u32().ok()?);
        let low = Key::from_bytes(d.bytes().ok()?.to_vec());
        let lsn = Lsn(d.u64().ok()?);
        let n = d.u32().ok()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let k = Key::from_bytes(d.bytes().ok()?.to_vec());
            let v = d.bytes().ok()?.to_vec();
            entries.push((k, v));
        }
        Some(MonoPage {
            id,
            table,
            low,
            lsn,
            entries,
            dirty: false,
        })
    }

    fn encode_entries(entries: &[(Key, Vec<u8>)]) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u32(entries.len() as u32);
        for (k, v) in entries {
            e.bytes(k.as_bytes());
            e.bytes(v);
        }
        e.finish()
    }

    fn decode_entries(buf: &[u8]) -> Vec<(Key, Vec<u8>)> {
        let mut d = Decoder::new(buf);
        let n = d.u32().unwrap_or(0) as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let k = match d.bytes() {
                Ok(b) => Key::from_bytes(b.to_vec()),
                Err(_) => break,
            };
            let v = match d.bytes() {
                Ok(b) => b.to_vec(),
                Err(_) => break,
            };
            out.push((k, v));
        }
        out
    }
}

struct MonoTable {
    /// Sorted directory: low key → page.
    dir: Vec<(Key, PageId)>,
}

struct MonoTxn {
    /// `(lsn, table, page-at-time, action)` for undo.
    ops: Vec<(Lsn, TableId, RecAction)>,
}

/// Configuration for the integrated engine.
#[derive(Clone)]
pub struct MonolithConfig {
    /// Page capacity in bytes.
    pub page_capacity: usize,
    /// Lock wait bound.
    pub lock_timeout: Option<Duration>,
}

impl Default for MonolithConfig {
    fn default() -> Self {
        MonolithConfig {
            page_capacity: 4096,
            lock_timeout: Some(Duration::from_secs(2)),
        }
    }
}

/// The integrated (bundled) engine.
pub struct Monolith {
    cfg: MonolithConfig,
    locks: Arc<LockManager>,
    log: Arc<LogStore<MonoLogRecord>>,
    disk: SimDisk,
    tables: Mutex<HashMap<TableId, MonoTable>>,
    pages: Mutex<HashMap<PageId, MonoPage>>,
    txns: Mutex<HashMap<TxnId, MonoTxn>>,
    next_txn: AtomicU64,
    next_page: AtomicU64,
    rssp: AtomicU64,
}

impl Monolith {
    /// A fresh engine over new stable storage.
    pub fn new(cfg: MonolithConfig) -> Arc<Monolith> {
        Self::attach(cfg, SimDisk::new(), Arc::new(LogStore::new()))
    }

    /// Attach to (possibly surviving) stable storage.
    pub fn attach(
        cfg: MonolithConfig,
        disk: SimDisk,
        log: Arc<LogStore<MonoLogRecord>>,
    ) -> Arc<Monolith> {
        Arc::new(Monolith {
            cfg,
            locks: Arc::new(LockManager::new()),
            log,
            disk,
            tables: Mutex::new(HashMap::new()),
            pages: Mutex::new(HashMap::new()),
            txns: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            next_page: AtomicU64::new(2),
            rssp: AtomicU64::new(1),
        })
    }

    /// The engine's log (experiment accounting).
    pub fn log(&self) -> &Arc<LogStore<MonoLogRecord>> {
        &self.log
    }

    /// The engine's disk (experiment accounting).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The engine's lock manager.
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Create a table.
    pub fn create_table(&self, table: TableId) {
        let pid = PageId(self.next_page.fetch_add(1, Ordering::Relaxed));
        self.pages.lock().insert(
            pid,
            MonoPage {
                id: pid,
                table,
                low: Key::empty(),
                lsn: Lsn::NULL,
                entries: Vec::new(),
                dirty: true,
            },
        );
        self.tables.lock().insert(
            table,
            MonoTable {
                dir: vec![(Key::empty(), pid)],
            },
        );
    }

    fn page_for(&self, table: TableId, key: &Key) -> Result<PageId, DcError> {
        let tables = self.tables.lock();
        let t = tables.get(&table).ok_or(DcError::NoSuchTable(table))?;
        let idx = match t.dir.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        Ok(t.dir[idx].1)
    }

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.log.append(MonoLogRecord::Begin { txn }, 17);
        self.txns.lock().insert(txn, MonoTxn { ops: Vec::new() });
        txn
    }

    fn lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<(), TcError> {
        match self
            .locks
            .lock(LockToken(txn.0), name, mode, self.cfg.lock_timeout)
        {
            Ok(()) => Ok(()),
            Err(LockError::Deadlock) => {
                self.abort(txn).ok();
                Err(TcError::Deadlock(txn))
            }
            Err(LockError::Timeout) => {
                self.abort(txn).ok();
                Err(TcError::LockTimeout(txn))
            }
        }
    }

    fn apply(
        &self,
        txn: TxnId,
        table: TableId,
        action: RecAction,
        redo_only: bool,
    ) -> Result<(), TcError> {
        let key = match &action {
            RecAction::Insert { key, .. }
            | RecAction::Update { key, .. }
            | RecAction::Delete { key, .. } => key.clone(),
        };
        let pid = self
            .page_for(table, &key)
            .map_err(|e| TcError::OperationFailed(txn, e))?;
        // The integrated engine's defining move: LSN assigned while the
        // page is latched; the page LSN is a sound scalar summary.
        let mut pages = self.pages.lock();
        let rec = MonoLogRecord::RecOp {
            txn,
            table,
            page: pid,
            action: action.clone(),
            redo_only,
        };
        let size = rec.encoded_size();
        let lsn = Lsn(self.log.append(rec, size));
        let page = pages.get_mut(&pid).expect("directory-referenced page");
        Self::apply_action(page, &action);
        page.lsn = lsn;
        page.dirty = true;
        let oversize = page.bytes() > self.cfg.page_capacity && page.entries.len() > 1;
        drop(pages);
        if !redo_only {
            if let Some(t) = self.txns.lock().get_mut(&txn) {
                t.ops.push((lsn, table, action));
            }
        }
        if oversize {
            self.split(table, pid);
        }
        Ok(())
    }

    fn apply_action(page: &mut MonoPage, action: &RecAction) {
        match action {
            RecAction::Insert { key, value } => {
                if let Err(pos) = page.entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    page.entries.insert(pos, (key.clone(), value.clone()));
                }
            }
            RecAction::Update { key, value, .. } => {
                if let Ok(pos) = page.entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    page.entries[pos].1 = value.clone();
                }
            }
            RecAction::Delete { key, .. } => {
                if let Ok(pos) = page.entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    page.entries.remove(pos);
                }
            }
        }
    }

    fn split(&self, table: TableId, pid: PageId) {
        let mut pages = self.pages.lock();
        let page = match pages.get_mut(&pid) {
            Some(p) => p,
            None => return,
        };
        if page.bytes() <= self.cfg.page_capacity || page.entries.len() < 2 {
            return;
        }
        let mid = page.entries.len() / 2;
        let upper = page.entries.split_off(mid);
        let split_key = upper[0].0.clone();
        let new_pid = PageId(self.next_page.fetch_add(1, Ordering::Relaxed));
        let rec = MonoLogRecord::Smo {
            table,
            images: vec![
                (
                    pid,
                    page.low.clone(),
                    MonoPage::encode_entries(&page.entries),
                ),
                (new_pid, split_key.clone(), MonoPage::encode_entries(&upper)),
            ],
        };
        let size = rec.encoded_size();
        let lsn = Lsn(self.log.append(rec, size));
        page.lsn = lsn;
        page.dirty = true;
        let new_page = MonoPage {
            id: new_pid,
            table,
            low: split_key.clone(),
            lsn,
            entries: upper,
            dirty: true,
        };
        pages.insert(new_pid, new_page);
        drop(pages);
        let mut tables = self.tables.lock();
        if let Some(t) = tables.get_mut(&table) {
            match t.dir.binary_search_by(|(k, _)| k.cmp(&split_key)) {
                Ok(i) => t.dir[i].1 = new_pid,
                Err(i) => t.dir.insert(i, (split_key, new_pid)),
            }
        }
    }

    /// Insert a record.
    pub fn insert(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        value: Vec<u8>,
    ) -> Result<(), TcError> {
        self.lock(txn, LockName::Table(table), LockMode::IX)?;
        self.lock(txn, LockName::Record(table, key.clone()), LockMode::X)?;
        if self
            .read_raw(table, &key)
            .map_err(|e| TcError::OperationFailed(txn, e))?
            .is_some()
        {
            self.abort(txn).ok();
            return Err(TcError::OperationFailed(
                txn,
                DcError::DuplicateKey(table, key),
            ));
        }
        self.apply(txn, table, RecAction::Insert { key, value }, false)
    }

    /// Update a record.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        value: Vec<u8>,
    ) -> Result<(), TcError> {
        self.lock(txn, LockName::Table(table), LockMode::IX)?;
        self.lock(txn, LockName::Record(table, key.clone()), LockMode::X)?;
        let prior = match self
            .read_raw(table, &key)
            .map_err(|e| TcError::OperationFailed(txn, e))?
        {
            Some(p) => p,
            None => {
                self.abort(txn).ok();
                return Err(TcError::OperationFailed(
                    txn,
                    DcError::KeyNotFound(table, key),
                ));
            }
        };
        self.apply(txn, table, RecAction::Update { key, value, prior }, false)
    }

    /// Delete a record.
    pub fn delete(&self, txn: TxnId, table: TableId, key: Key) -> Result<(), TcError> {
        self.lock(txn, LockName::Table(table), LockMode::IX)?;
        self.lock(txn, LockName::Record(table, key.clone()), LockMode::X)?;
        let prior = match self
            .read_raw(table, &key)
            .map_err(|e| TcError::OperationFailed(txn, e))?
        {
            Some(p) => p,
            None => {
                self.abort(txn).ok();
                return Err(TcError::OperationFailed(
                    txn,
                    DcError::KeyNotFound(table, key),
                ));
            }
        };
        self.apply(txn, table, RecAction::Delete { key, prior }, false)
    }

    fn read_raw(&self, table: TableId, key: &Key) -> Result<Option<Vec<u8>>, DcError> {
        let pid = self.page_for(table, key)?;
        let pages = self.pages.lock();
        let page = pages
            .get(&pid)
            .ok_or_else(|| DcError::Corrupt("missing page".into()))?;
        Ok(page
            .entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| page.entries[i].1.clone()))
    }

    /// Transactional read (S lock).
    pub fn read(&self, txn: TxnId, table: TableId, key: Key) -> Result<Option<Vec<u8>>, TcError> {
        self.lock(txn, LockName::Table(table), LockMode::IS)?;
        self.lock(txn, LockName::Record(table, key.clone()), LockMode::S)?;
        self.read_raw(table, &key)
            .map_err(|e| TcError::OperationFailed(txn, e))
    }

    /// Serializable scan (table-granularity S lock: the integrated
    /// engine could do key-range locking inside the page, but a coarse
    /// lock keeps the baseline honest and simple).
    pub fn scan(
        &self,
        txn: TxnId,
        table: TableId,
        low: Key,
        high: Option<Key>,
    ) -> Result<Vec<(Key, Vec<u8>)>, TcError> {
        self.lock(txn, LockName::Table(table), LockMode::S)?;
        let dir: Vec<PageId> = {
            let tables = self.tables.lock();
            let t = tables
                .get(&table)
                .ok_or(TcError::OperationFailed(txn, DcError::NoSuchTable(table)))?;
            t.dir.iter().map(|(_, p)| *p).collect()
        };
        let mut out = Vec::new();
        let pages = self.pages.lock();
        for pid in dir {
            if let Some(p) = pages.get(&pid) {
                for (k, v) in &p.entries {
                    if *k >= low && high.as_ref().map(|h| k < h).unwrap_or(true) {
                        out.push((k.clone(), v.clone()));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Commit: force the log, release locks.
    pub fn commit(&self, txn: TxnId) -> Result<(), TcError> {
        if self.txns.lock().remove(&txn).is_none() {
            return Err(TcError::NotActive(txn));
        }
        self.log.append(MonoLogRecord::Commit { txn }, 17);
        self.log.force();
        self.locks.unlock_all(LockToken(txn.0));
        Ok(())
    }

    /// Abort: undo with compensation records, release locks.
    pub fn abort(&self, txn: TxnId) -> Result<(), TcError> {
        let state = match self.txns.lock().remove(&txn) {
            Some(s) => s,
            None => return Err(TcError::NotActive(txn)),
        };
        for (_, table, action) in state.ops.into_iter().rev() {
            let inverse = match action {
                RecAction::Insert { key, .. } => {
                    let prior = self
                        .read_raw(table, &key)
                        .ok()
                        .flatten()
                        .unwrap_or_default();
                    RecAction::Delete { key, prior }
                }
                RecAction::Update { key, prior, value } => RecAction::Update {
                    key,
                    value: prior,
                    prior: value,
                },
                RecAction::Delete { key, prior } => RecAction::Insert { key, value: prior },
            };
            self.apply(txn, table, inverse, true)?;
        }
        self.log.append(MonoLogRecord::Abort { txn }, 17);
        self.log.force();
        self.locks.unlock_all(LockToken(txn.0));
        Ok(())
    }

    /// Flush all dirty pages (WAL enforced) and advance the RSSP.
    pub fn checkpoint(&self) {
        self.log.force();
        let mut pages = self.pages.lock();
        for p in pages.values_mut() {
            if p.dirty {
                self.disk.write_page(p.id, p.encode());
                p.dirty = false;
            }
        }
        drop(pages);
        let rssp = self.log.last_seq() + 1;
        self.log
            .append(MonoLogRecord::Checkpoint { rssp: Lsn(rssp) }, 17);
        self.log.force();
        self.rssp.store(rssp, Ordering::Relaxed);
        // Undo information for active transactions must stay.
        // (Simplification: only truncate when quiescent.)
        if self.txns.lock().is_empty() {
            self.log.truncate_prefix(rssp.saturating_sub(1));
        }
    }

    /// Crash: lose the cache and the unforced log tail (they fail
    /// together — Section 5.3.1).
    pub fn crash(&self) {
        self.pages.lock().clear();
        self.tables.lock().clear();
        self.txns.lock().clear();
        self.locks.clear_all();
        self.log.crash();
    }

    /// ARIES-style restart: load stable pages, redo from the RSSP with
    /// the scalar page-LSN test (repeat history), undo losers.
    pub fn recover(&self) {
        // Reload pages and rebuild directories.
        let mut pages = self.pages.lock();
        let mut tables = self.tables.lock();
        pages.clear();
        tables.clear();
        let mut max_page = 1u64;
        for pid in self.disk.page_ids() {
            if let Some(img) = self.disk.read_page(pid) {
                if let Some(p) = MonoPage::decode(&img) {
                    max_page = max_page.max(pid.0);
                    tables
                        .entry(p.table)
                        .or_insert_with(|| MonoTable { dir: Vec::new() })
                        .dir
                        .push((p.low.clone(), p.id));
                    pages.insert(pid, p);
                }
            }
        }
        for t in tables.values_mut() {
            t.dir.sort_by(|a, b| a.0.cmp(&b.0));
        }
        drop(tables);
        drop(pages);

        // Analysis + redo.
        let records = self.log.read_all_stable();
        let mut rssp = 1u64;
        let mut losers: HashMap<TxnId, Vec<(TableId, RecAction)>> = HashMap::new();
        let mut max_txn = 0u64;
        for (_, rec) in &records {
            match rec {
                MonoLogRecord::Checkpoint { rssp: r } => rssp = rssp.max(r.0),
                MonoLogRecord::Begin { txn } => {
                    max_txn = max_txn.max(txn.0);
                    losers.insert(*txn, Vec::new());
                }
                MonoLogRecord::RecOp {
                    txn,
                    table,
                    action,
                    redo_only,
                    ..
                } => {
                    if !redo_only {
                        if let Some(l) = losers.get_mut(txn) {
                            l.push((*table, action.clone()));
                        }
                    }
                }
                MonoLogRecord::Commit { txn } | MonoLogRecord::Abort { txn } => {
                    losers.remove(txn);
                }
                MonoLogRecord::Smo { .. } => {}
            }
        }
        self.next_txn.store(max_txn + 1, Ordering::Relaxed);

        for (seq, rec) in &records {
            if *seq < rssp {
                continue;
            }
            let lsn = Lsn(*seq);
            match rec {
                MonoLogRecord::RecOp {
                    page,
                    action,
                    table,
                    ..
                } => {
                    let mut pages = self.pages.lock();
                    // The page may not exist yet (created after the last
                    // checkpoint): a following Smo record carries its
                    // image; record ops before it apply to the pre-split
                    // page. Create empty pages on demand.
                    let p = pages.entry(*page).or_insert_with(|| MonoPage {
                        id: *page,
                        table: *table,
                        low: Key::empty(),
                        lsn: Lsn::NULL,
                        entries: Vec::new(),
                        dirty: true,
                    });
                    if p.lsn < lsn {
                        Self::apply_action(p, action);
                        p.lsn = lsn;
                        p.dirty = true;
                    }
                }
                MonoLogRecord::Smo { table, images } => {
                    let mut pages = self.pages.lock();
                    let mut tables = self.tables.lock();
                    for (pid, low, entries) in images {
                        let newer = pages.get(pid).map(|p| p.lsn >= lsn).unwrap_or(false);
                        if newer {
                            continue;
                        }
                        let p = MonoPage {
                            id: *pid,
                            table: *table,
                            low: low.clone(),
                            lsn,
                            entries: MonoPage::decode_entries(entries),
                            dirty: true,
                        };
                        pages.insert(*pid, p);
                        let t = tables
                            .entry(*table)
                            .or_insert_with(|| MonoTable { dir: Vec::new() });
                        match t.dir.binary_search_by(|(k, _)| k.cmp(low)) {
                            Ok(i) => t.dir[i].1 = *pid,
                            Err(i) => t.dir.insert(i, (low.clone(), *pid)),
                        }
                    }
                }
                _ => {}
            }
        }
        let max_pid = self.pages.lock().keys().map(|p| p.0).max().unwrap_or(1);
        self.next_page
            .store(max_pid.max(max_page) + 1, Ordering::Relaxed);

        // Undo losers with compensation records.
        let mut undo: Vec<(TxnId, TableId, RecAction)> = Vec::new();
        for (txn, ops) in losers {
            for (table, action) in ops.into_iter().rev() {
                undo.push((txn, table, action));
            }
            self.log.append(MonoLogRecord::Abort { txn }, 17);
        }
        for (txn, table, action) in undo {
            let inverse = match action {
                RecAction::Insert { key, .. } => {
                    let prior = self
                        .read_raw(table, &key)
                        .ok()
                        .flatten()
                        .unwrap_or_default();
                    RecAction::Delete { key, prior }
                }
                RecAction::Update { key, prior, value } => RecAction::Update {
                    key,
                    value: prior,
                    prior: value,
                },
                RecAction::Delete { key, prior } => RecAction::Insert { key, value: prior },
            };
            let _ = self.apply(txn, table, inverse, true);
        }
        self.log.force();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    fn engine() -> Arc<Monolith> {
        let m = Monolith::new(MonolithConfig {
            page_capacity: 256,
            ..Default::default()
        });
        m.create_table(T);
        m
    }

    #[test]
    fn txn_roundtrip() {
        let m = engine();
        let t = m.begin();
        m.insert(t, T, Key::from_u64(1), b"a".to_vec()).unwrap();
        m.insert(t, T, Key::from_u64(2), b"b".to_vec()).unwrap();
        m.commit(t).unwrap();
        let t2 = m.begin();
        assert_eq!(
            m.read(t2, T, Key::from_u64(1)).unwrap(),
            Some(b"a".to_vec())
        );
        m.update(t2, T, Key::from_u64(1), b"a2".to_vec()).unwrap();
        m.delete(t2, T, Key::from_u64(2)).unwrap();
        m.commit(t2).unwrap();
        let t3 = m.begin();
        assert_eq!(
            m.read(t3, T, Key::from_u64(1)).unwrap(),
            Some(b"a2".to_vec())
        );
        assert_eq!(m.read(t3, T, Key::from_u64(2)).unwrap(), None);
        m.commit(t3).unwrap();
    }

    #[test]
    fn abort_restores_state() {
        let m = engine();
        let t = m.begin();
        m.insert(t, T, Key::from_u64(1), b"keep".to_vec()).unwrap();
        m.commit(t).unwrap();
        let t2 = m.begin();
        m.update(t2, T, Key::from_u64(1), b"x".to_vec()).unwrap();
        m.insert(t2, T, Key::from_u64(2), b"y".to_vec()).unwrap();
        m.abort(t2).unwrap();
        let t3 = m.begin();
        assert_eq!(
            m.read(t3, T, Key::from_u64(1)).unwrap(),
            Some(b"keep".to_vec())
        );
        assert_eq!(m.read(t3, T, Key::from_u64(2)).unwrap(), None);
        m.commit(t3).unwrap();
    }

    #[test]
    fn splits_and_scans() {
        let m = engine();
        let t = m.begin();
        for k in 0..200u64 {
            m.insert(t, T, Key::from_u64(k), b"0123456789".to_vec())
                .unwrap();
        }
        m.commit(t).unwrap();
        let t2 = m.begin();
        let rows = m
            .scan(t2, T, Key::from_u64(50), Some(Key::from_u64(60)))
            .unwrap();
        m.commit(t2).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn crash_recovery_keeps_committed_only() {
        let m = engine();
        for k in 0..50u64 {
            let t = m.begin();
            m.insert(t, T, Key::from_u64(k), format!("v{k}").into_bytes())
                .unwrap();
            m.commit(t).unwrap();
        }
        let loser = m.begin();
        m.update(loser, T, Key::from_u64(0), b"loser".to_vec())
            .unwrap();
        m.log().force(); // loser's op is stable, commit record is not
        m.crash();
        m.recover();
        let t = m.begin();
        let rows = m.scan(t, T, Key::empty(), None).unwrap();
        m.commit(t).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[0].1, b"v0".to_vec(), "loser update undone");
    }

    #[test]
    fn checkpoint_bounds_redo() {
        let m = engine();
        for k in 0..30u64 {
            let t = m.begin();
            m.insert(t, T, Key::from_u64(k), b"v".to_vec()).unwrap();
            m.commit(t).unwrap();
        }
        m.checkpoint();
        for k in 30..40u64 {
            let t = m.begin();
            m.insert(t, T, Key::from_u64(k), b"v".to_vec()).unwrap();
            m.commit(t).unwrap();
        }
        m.crash();
        m.recover();
        let t = m.begin();
        assert_eq!(m.scan(t, T, Key::empty(), None).unwrap().len(), 40);
        m.commit(t).unwrap();
    }

    #[test]
    fn page_lsn_is_scalar_and_sound_here() {
        // In the bundled engine LSNs are assigned under the page latch,
        // so out-of-order arrival cannot happen by construction: the
        // scalar page LSN is a sound idempotence summary.
        let m = engine();
        let t = m.begin();
        m.insert(t, T, Key::from_u64(1), b"a".to_vec()).unwrap();
        m.commit(t).unwrap();
        m.checkpoint();
        m.crash();
        m.recover();
        let t = m.begin();
        assert_eq!(m.read(t, T, Key::from_u64(1)).unwrap(), Some(b"a".to_vec()));
        m.commit(t).unwrap();
    }
}
