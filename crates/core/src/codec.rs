//! A small binary codec for page images and log records.
//!
//! Little-endian, length-prefixed. Hand-rolled instead of pulling a serde
//! stack: storage engines control their on-disk layout byte by byte, and
//! the page-sync experiments (Section 5.1.2) need exact accounting of how
//! many bytes abstract LSNs occupy in a page image.

use crate::error::CoreError;

/// Append-only byte sink.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Write a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Consume into the underlying buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf` starting at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.remaining() < n {
            return Err(CoreError::Codec {
                what: "unexpected end of buffer",
                at: self.pos,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, CoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CoreError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a bool.
    pub fn bool(&mut self) -> Result<bool, CoreError> {
        Ok(self.u8()? != 0)
    }

    /// Fail unless the whole buffer was consumed.
    pub fn expect_end(&self) -> Result<(), CoreError> {
        if self.remaining() != 0 {
            return Err(CoreError::Codec {
                what: "trailing bytes",
                at: self.pos,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(1 << 40);
        e.bytes(b"hello");
        e.bool(true);
        let v = e.finish();
        let mut d = Decoder::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert!(d.bool().unwrap());
        d.expect_end().unwrap();
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut e = Encoder::new();
        e.u32(5);
        let v = e.finish();
        let mut d = Decoder::new(&v);
        assert!(d.u64().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u8(2);
        let v = e.finish();
        let mut d = Decoder::new(&v);
        d.u8().unwrap();
        assert!(d.expect_end().is_err());
    }
}
