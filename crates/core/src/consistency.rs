//! The read-consistency spectrum — one first-class surface for every
//! read the transaction tier can serve (primary locking reads, primary
//! MVCC snapshot reads, bounded-staleness replica reads).
//!
//! "Towards Transaction as a Service" argues a decoupled transaction
//! tier must expose read consistency as a service surface rather than a
//! per-method choice; here the caller states *what* guarantee it needs
//! and the TC decides *where* to serve it (primary vs replica, locked
//! vs version chain).

use crate::lsn::Lsn;

/// Which LSN an MVCC snapshot read observes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotSpec {
    /// Pin the transaction's snapshot at its first snapshot read (the
    /// TC's stable LSN at that moment) and reuse it for every later
    /// snapshot read — repeatable reads within the transaction.
    Pinned,
    /// Read at an explicit LSN (e.g. a position captured earlier via
    /// [`stable position`](crate::lsn::Lsn) bookkeeping). Positions
    /// older than the checkpoint truncation floor are served
    /// best-effort: garbage collection may have pruned the exact
    /// version.
    At(Lsn),
    /// Read at the TC's stable LSN *now*: sees every commit whose
    /// stamp is durable, without pinning.
    Fresh,
}

/// What a read is allowed to observe, and implicitly what it may cost.
///
/// | variant | locks | staleness | serving tier |
/// |---|---|---|---|
/// | `Locking` | S record lock | none (serializable) | primary |
/// | `Snapshot` | none | commits ≤ snapshot LSN | primary |
/// | `BoundedLag(n)` | none | ≤ `n` LSNs behind stable | replica, else primary snapshot |
/// | `AtLeast(lsn)` | none | anything ≥ `lsn` | replica, else primary snapshot |
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadConsistency {
    /// Serializable locking read on the primary: takes an S record
    /// lock, sees the latest committed state, blocks on (and is
    /// blocked by) writers. The default for read-write transactions.
    Locking,
    /// Lock-free MVCC snapshot read on the primary: sees exactly the
    /// commits stamped at or below the snapshot LSN, never blocks on
    /// writers and never blocks them.
    Snapshot(SnapshotSpec),
    /// Any replica whose replication lag is within `n` LSNs of the
    /// primary's stable position; falls back to a primary snapshot
    /// read at the stable LSN when no replica qualifies.
    BoundedLag(u64),
    /// Any replica that has applied at least `lsn` (read-your-writes:
    /// pass the stable position observed after your commit); falls
    /// back to a primary snapshot read at the stable LSN.
    AtLeast(Lsn),
}

impl ReadConsistency {
    /// Shorthand for a pinned (repeatable-read) snapshot.
    pub const SNAPSHOT: ReadConsistency = ReadConsistency::Snapshot(SnapshotSpec::Pinned);

    /// True if this read may be served without record locks.
    pub fn lock_free(&self) -> bool {
        !matches!(self, ReadConsistency::Locking)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_freedom() {
        assert!(!ReadConsistency::Locking.lock_free());
        assert!(ReadConsistency::SNAPSHOT.lock_free());
        assert!(ReadConsistency::Snapshot(SnapshotSpec::At(Lsn(3))).lock_free());
        assert!(ReadConsistency::BoundedLag(0).lock_free());
        assert!(ReadConsistency::AtLeast(Lsn(9)).lock_free());
    }
}
