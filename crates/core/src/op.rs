//! Logical (record-oriented) operations — the only vocabulary the TC may
//! use when talking to a DC (paper Section 4.1.1: "The locks cannot
//! exploit knowledge of data pagination"; Section 4.2.1:
//! `perform_operation` carries an operation name, a table, a key or key
//! range, and a unique identifier — never a page id).
//!
//! ## Undo information
//!
//! The TC logs *logical undo* as inverse operations (Section 4.1.1(2b)).
//! Because redo must be resendable after a TC crash, the undo information
//! has to be in the TC log **before** the operation's effects can become
//! stable at the DC. This implementation therefore requires the TC to
//! know the prior value when it logs an `Update`/`Delete`: it uses the
//! transaction's earlier read of the record, or issues the read itself
//! (the locks it holds make the read stable). [`LogicalOp::inverse`]
//! computes the inverse given that prior state.

use crate::ids::TableId;
use crate::key::Key;
use crate::lsn::Lsn;

/// Isolation flavor of a read request (paper Section 6.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadFlavor {
    /// The latest version, committed or not. For a TC reading its own
    /// updatable partition this is "read own writes"; for a foreign TC it
    /// is a *dirty read* (Section 6.2.1) — always well-formed thanks to
    /// operation atomicity, but possibly uncommitted.
    Latest,
    /// *Read committed* over versioned data (Section 6.2.2): sees the
    /// before-version while an update is pending; never blocks.
    Committed,
    /// MVCC snapshot read: the newest version whose **commit LSN** is
    /// `<=` the given LSN. Uncommitted and not-yet-stamped data is
    /// invisible; never blocks and takes no locks at the TC.
    Snapshot(Lsn),
}

/// A logical operation on a DC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogicalOp {
    /// Insert a new record. Fails with `DuplicateKey` if present.
    Insert {
        /// Target table.
        table: TableId,
        /// Record key.
        key: Key,
        /// Record payload.
        value: Vec<u8>,
    },
    /// Replace an existing record's payload. Fails if absent.
    Update {
        /// Target table.
        table: TableId,
        /// Record key.
        key: Key,
        /// New payload.
        value: Vec<u8>,
    },
    /// Remove a record. Fails if absent.
    Delete {
        /// Target table.
        table: TableId,
        /// Record key.
        key: Key,
    },
    /// Versioned insert-or-update (Section 6.2.2): installs `value` as an
    /// uncommitted version, retaining the committed state (or an "absent"
    /// marker) as the before-version.
    VersionedWrite {
        /// Target (versioned) table.
        table: TableId,
        /// Record key.
        key: Key,
        /// New (uncommitted) payload.
        value: Vec<u8>,
    },
    /// Post-commit: drop the before-version, making the update committed.
    PromoteVersion {
        /// Target (versioned) table.
        table: TableId,
        /// Record key.
        key: Key,
    },
    /// Abort: remove the uncommitted version, restoring the
    /// before-version (removing the record if it was a versioned insert).
    RevertVersion {
        /// Target (versioned) table.
        table: TableId,
        /// Record key.
        key: Key,
    },
    /// Post-commit MVCC bookkeeping: stamp the version created by op
    /// LSN `op` with the transaction's `commit` LSN, publishing it to
    /// snapshot readers. Identified by the creating op's LSN so that
    /// resends and reordering cannot stamp a later write by mistake.
    /// Redo-only (like `PromoteVersion`): never undone.
    StampCommit {
        /// Target table.
        table: TableId,
        /// Record key.
        key: Key,
        /// LSN of the mutation whose version is being stamped.
        op: Lsn,
        /// The transaction's commit LSN.
        commit: Lsn,
    },
    /// Point read (unlogged).
    Read {
        /// Target table.
        table: TableId,
        /// Record key.
        key: Key,
        /// Isolation flavor.
        flavor: ReadFlavor,
    },
    /// Range scan (unlogged): keys in `[low, high)`, at most `limit`.
    ScanRange {
        /// Target table.
        table: TableId,
        /// Inclusive lower bound.
        low: Key,
        /// Exclusive upper bound (`None` = unbounded).
        high: Option<Key>,
        /// Maximum number of entries (`None` = unbounded).
        limit: Option<usize>,
        /// Isolation flavor.
        flavor: ReadFlavor,
    },
    /// Speculative key probe for the fetch-ahead locking protocol
    /// (Section 3.1): return up to `count` existing keys ≥ `from`,
    /// without their payloads. Unlogged.
    ProbeKeys {
        /// Target table.
        table: TableId,
        /// Inclusive lower bound.
        from: Key,
        /// Maximum number of keys.
        count: usize,
    },
}

impl LogicalOp {
    /// The table this operation targets.
    pub fn table(&self) -> TableId {
        match self {
            LogicalOp::Insert { table, .. }
            | LogicalOp::Update { table, .. }
            | LogicalOp::Delete { table, .. }
            | LogicalOp::VersionedWrite { table, .. }
            | LogicalOp::PromoteVersion { table, .. }
            | LogicalOp::RevertVersion { table, .. }
            | LogicalOp::StampCommit { table, .. }
            | LogicalOp::Read { table, .. }
            | LogicalOp::ScanRange { table, .. }
            | LogicalOp::ProbeKeys { table, .. } => *table,
        }
    }

    /// The single key this operation targets, if it is a point operation.
    pub fn point_key(&self) -> Option<&Key> {
        match self {
            LogicalOp::Insert { key, .. }
            | LogicalOp::Update { key, .. }
            | LogicalOp::Delete { key, .. }
            | LogicalOp::VersionedWrite { key, .. }
            | LogicalOp::PromoteVersion { key, .. }
            | LogicalOp::RevertVersion { key, .. }
            | LogicalOp::StampCommit { key, .. }
            | LogicalOp::Read { key, .. } => Some(key),
            LogicalOp::ScanRange { .. } | LogicalOp::ProbeKeys { .. } => None,
        }
    }

    /// True if the operation changes DC state (must be logged, consumes
    /// an LSN, participates in idempotence).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            LogicalOp::Insert { .. }
                | LogicalOp::Update { .. }
                | LogicalOp::Delete { .. }
                | LogicalOp::VersionedWrite { .. }
                | LogicalOp::PromoteVersion { .. }
                | LogicalOp::RevertVersion { .. }
                | LogicalOp::StampCommit { .. }
        )
    }

    /// The inverse operation, given the record's prior payload
    /// (`prior = None` means the record did not exist).
    ///
    /// Returns `None` for reads (nothing to undo) and for the version
    /// bookkeeping operations: `PromoteVersion` runs only after commit and
    /// `RevertVersion` only during abort — neither is ever itself undone
    /// (they are redo-only, like compensation records).
    pub fn inverse(&self, prior: Option<&[u8]>) -> Option<LogicalOp> {
        match self {
            LogicalOp::Insert { table, key, .. } => Some(LogicalOp::Delete {
                table: *table,
                key: key.clone(),
            }),
            LogicalOp::Update { table, key, .. } => Some(LogicalOp::Update {
                table: *table,
                key: key.clone(),
                value: prior.expect("update undo requires prior value").to_vec(),
            }),
            LogicalOp::Delete { table, key } => Some(LogicalOp::Insert {
                table: *table,
                key: key.clone(),
                value: prior.expect("delete undo requires prior value").to_vec(),
            }),
            // A versioned write is undone by reverting to the retained
            // before-version — the DC holds the prior state, so the TC
            // needs no prior payload.
            LogicalOp::VersionedWrite { table, key, .. } => Some(LogicalOp::RevertVersion {
                table: *table,
                key: key.clone(),
            }),
            LogicalOp::PromoteVersion { .. }
            | LogicalOp::RevertVersion { .. }
            | LogicalOp::StampCommit { .. }
            | LogicalOp::Read { .. }
            | LogicalOp::ScanRange { .. }
            | LogicalOp::ProbeKeys { .. } => None,
        }
    }

    /// Short operation name for logs and traces.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalOp::Insert { .. } => "insert",
            LogicalOp::Update { .. } => "update",
            LogicalOp::Delete { .. } => "delete",
            LogicalOp::VersionedWrite { .. } => "vwrite",
            LogicalOp::PromoteVersion { .. } => "promote",
            LogicalOp::RevertVersion { .. } => "revert",
            LogicalOp::StampCommit { .. } => "stamp",
            LogicalOp::Read { .. } => "read",
            LogicalOp::ScanRange { .. } => "scan",
            LogicalOp::ProbeKeys { .. } => "probe",
        }
    }
}

/// Result of a successfully performed logical operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpResult {
    /// Mutation applied (or suppressed as a duplicate — indistinguishable
    /// by design: exactly-once).
    Done,
    /// Point read result (`None` = absent).
    Value(Option<Vec<u8>>),
    /// Probe result: existing keys, ascending.
    Keys(Vec<Key>),
    /// Scan result: key/payload pairs, ascending.
    Entries(Vec<(Key, Vec<u8>)>),
}

impl OpResult {
    /// Unwrap a point-read result.
    pub fn into_value(self) -> Option<Vec<u8>> {
        match self {
            OpResult::Value(v) => v,
            other => panic!("expected Value, got {other:?}"),
        }
    }

    /// Unwrap a scan result.
    pub fn into_entries(self) -> Vec<(Key, Vec<u8>)> {
        match self {
            OpResult::Entries(e) => e,
            other => panic!("expected Entries, got {other:?}"),
        }
    }

    /// Unwrap a probe result.
    pub fn into_keys(self) -> Vec<Key> {
        match self {
            OpResult::Keys(k) => k,
            other => panic!("expected Keys, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TableId {
        TableId(1)
    }

    #[test]
    fn inverse_of_insert_is_delete() {
        let op = LogicalOp::Insert {
            table: t(),
            key: Key::from_u64(1),
            value: b"v".to_vec(),
        };
        assert_eq!(
            op.inverse(None),
            Some(LogicalOp::Delete {
                table: t(),
                key: Key::from_u64(1)
            })
        );
    }

    #[test]
    fn inverse_of_update_restores_prior() {
        let op = LogicalOp::Update {
            table: t(),
            key: Key::from_u64(1),
            value: b"new".to_vec(),
        };
        assert_eq!(
            op.inverse(Some(b"old")),
            Some(LogicalOp::Update {
                table: t(),
                key: Key::from_u64(1),
                value: b"old".to_vec()
            })
        );
    }

    #[test]
    fn inverse_of_delete_reinserts() {
        let op = LogicalOp::Delete {
            table: t(),
            key: Key::from_u64(2),
        };
        assert_eq!(
            op.inverse(Some(b"old")),
            Some(LogicalOp::Insert {
                table: t(),
                key: Key::from_u64(2),
                value: b"old".to_vec()
            })
        );
    }

    #[test]
    fn inverse_of_versioned_write_is_revert() {
        let op = LogicalOp::VersionedWrite {
            table: t(),
            key: Key::from_u64(3),
            value: b"v".to_vec(),
        };
        assert_eq!(
            op.inverse(None),
            Some(LogicalOp::RevertVersion {
                table: t(),
                key: Key::from_u64(3)
            })
        );
    }

    #[test]
    fn reads_and_compensations_have_no_inverse() {
        assert_eq!(
            LogicalOp::Read {
                table: t(),
                key: Key::from_u64(1),
                flavor: ReadFlavor::Latest
            }
            .inverse(None),
            None
        );
        assert_eq!(
            LogicalOp::PromoteVersion {
                table: t(),
                key: Key::from_u64(1)
            }
            .inverse(None),
            None
        );
        assert_eq!(
            LogicalOp::RevertVersion {
                table: t(),
                key: Key::from_u64(1)
            }
            .inverse(None),
            None
        );
        assert_eq!(
            LogicalOp::StampCommit {
                table: t(),
                key: Key::from_u64(1),
                op: Lsn(4),
                commit: Lsn(9)
            }
            .inverse(None),
            None
        );
    }

    #[test]
    fn mutation_classification() {
        assert!(LogicalOp::Insert {
            table: t(),
            key: Key::from_u64(1),
            value: vec![]
        }
        .is_mutation());
        assert!(LogicalOp::PromoteVersion {
            table: t(),
            key: Key::from_u64(1)
        }
        .is_mutation());
        assert!(LogicalOp::StampCommit {
            table: t(),
            key: Key::from_u64(1),
            op: Lsn(2),
            commit: Lsn(3)
        }
        .is_mutation());
        assert!(!LogicalOp::ProbeKeys {
            table: t(),
            from: Key::empty(),
            count: 4
        }
        .is_mutation());
        assert!(!LogicalOp::ScanRange {
            table: t(),
            low: Key::empty(),
            high: None,
            limit: None,
            flavor: ReadFlavor::Committed
        }
        .is_mutation());
    }

    #[test]
    fn point_key_extraction() {
        let op = LogicalOp::Delete {
            table: t(),
            key: Key::from_u64(5),
        };
        assert_eq!(op.point_key(), Some(&Key::from_u64(5)));
        let scan = LogicalOp::ScanRange {
            table: t(),
            low: Key::empty(),
            high: None,
            limit: None,
            flavor: ReadFlavor::Latest,
        };
        assert_eq!(scan.point_key(), None);
    }
}
