//! The TC:DC message API (paper Section 4.2.1) and the interaction
//! contracts it carries (Section 4.2).
//!
//! The kernel is "a distributed system" (Section 4.1): the TC acts as a
//! client, the DC as a server; information exchange may be synchronous
//! calls on a multi-core design or asynchronous messages in a cloud
//! deployment — both are supported by making the DC a message handler
//! ([`DataComponentApi`]) behind a transport chosen at deployment time.
//!
//! Contract summary:
//! * **Causality** — the DC never makes an operation's effects stable
//!   before the TC's log record for it is stable: enforced with
//!   [`TcToDc::EndOfStableLog`].
//! * **Unique request ids** — [`TcToDc::Perform`] carries a
//!   [`RequestId`]; mutations use the TC-log LSN.
//! * **Idempotence** — the DC tracks applied LSNs in abstract page LSNs
//!   and suppresses duplicates, enabling…
//! * **Resend** — the TC resends `Perform` (same request id) until it
//!   sees a [`DcToTc::Reply`].
//! * **Recovery** — [`TcToDc::RestartBegin`] / [`TcToDc::RestartEnd`]
//!   bracket the restart conversation; the DC makes its structures
//!   well-formed *before* acknowledging with [`DcToTc::RestartReady`].
//! * **Contract termination** — [`TcToDc::Checkpoint`] asks the DC to
//!   make everything below a new redo-scan-start-point stable, after
//!   which the TC may stop resending those operations;
//!   [`TcToDc::LowWaterMark`] lets the DC collapse abstract LSNs.

use crate::error::DcError;
use crate::ids::{DcId, RequestId, TcId};
use crate::lsn::Lsn;
use crate::op::{LogicalOp, OpResult};

/// Messages from a Transactional Component to a Data Component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcToDc {
    /// `perform_operation`: execute a logical operation exactly once.
    /// Resends reuse the same `req`.
    Perform {
        /// Sending TC.
        tc: TcId,
        /// Unique request id (the TC-log LSN for mutations).
        req: RequestId,
        /// The logical operation.
        op: LogicalOp,
    },
    /// A batch of `perform_operation` requests coalesced by the
    /// transport (the cloud deployment amortizes per-message cost over
    /// many operations). Each element keeps its own [`RequestId`] —
    /// mutations keep their TC-log LSNs — and the DC replies to every
    /// contained operation individually, so resend, idempotence and
    /// low-water-mark bookkeeping are exactly as for [`TcToDc::Perform`].
    /// A faulty transport drops or reorders the batch as a whole.
    PerformBatch {
        /// Sending TC.
        tc: TcId,
        /// The batched operations, each with its own request id.
        ops: Vec<(RequestId, LogicalOp)>,
    },
    /// `end_of_stable_log`: every operation with LSN ≤ `eosl` is stable
    /// in the TC log and may therefore be made stable by the DC (this is
    /// how write-ahead logging is enforced in an unbundled engine).
    EndOfStableLog {
        /// Sending TC.
        tc: TcId,
        /// Last stable TC-log LSN.
        eosl: Lsn,
    },
    /// `low_water_mark`: the TC has received replies for every operation
    /// with LSN ≤ `lwm`; there are no gaps below it, so the DC may use it
    /// as a page's `LSNlw` and prune in-sets (Section 5.1.2).
    LowWaterMark {
        /// Sending TC.
        tc: TcId,
        /// All-replied prefix of the TC's LSNs.
        lwm: Lsn,
    },
    /// `checkpoint`: the TC wishes to advance its redo scan start point
    /// to `new_rssp`. The DC replies with [`DcToTc::CheckpointDone`] once
    /// every page containing effects of operations with LSN < `new_rssp`
    /// is stable, releasing the TC's resend obligation below that point.
    Checkpoint {
        /// Sending TC.
        tc: TcId,
        /// Proposed new redo scan start point.
        new_rssp: Lsn,
    },
    /// `restart` (first half): the TC is recovering (or the DC crashed
    /// and the TC is driving redo). The DC must discard any effects of
    /// this TC's operations with LSN > `stable_end` — causality
    /// guarantees they are volatile — and then acknowledge with
    /// [`DcToTc::RestartReady`]. Redo resends follow as ordinary
    /// `Perform` messages.
    RestartBegin {
        /// Recovering TC.
        tc: TcId,
        /// End of the TC's stable log; later effects must be discarded.
        stable_end: Lsn,
    },
    /// `restart` (second half): redo resends and loser rollback are
    /// complete; the DC acknowledges with [`DcToTc::RestartDone`] and
    /// normal processing resumes.
    RestartEnd {
        /// Recovering TC.
        tc: TcId,
    },
    /// Replication: a batch of *committed* logical redo shipped to a
    /// read-only DC replica. The TC's logical log is already a
    /// record-oriented replication stream (any DC that replays it
    /// converges to the primary's committed state); this message carries
    /// one contiguous slice of it, structured as **groups** — one per
    /// committed transaction (positioned at its commit-record LSN) or
    /// per redo-only record (positioned at its own LSN).
    ///
    /// Idempotence is two-layered: a replica skips whole groups at or
    /// below its applied frontier (a re-delivered group must never
    /// re-execute against newer state — a logical operation that failed
    /// deterministically on first delivery could *succeed* the second
    /// time and corrupt the replica), while records inside a
    /// first-time-applied group still carry their original TC-log LSNs
    /// so the ordinary abstract-LSN discipline suppresses re-application
    /// onto pages whose flushed state already reflects them (replica
    /// crash recovery). `prev`/`upto` are stream positions: the batch
    /// extends the stream from `prev` to `upto`, and a replica whose
    /// applied frontier is below `prev` must discard the batch (a gap —
    /// an earlier batch was lost) and wait for the shipper's
    /// cursor-based resend. A faulty transport drops, reorders or
    /// duplicates the batch as a whole.
    ShipBatch {
        /// Shipping (primary-side) TC.
        tc: TcId,
        /// Stream position this batch extends (the `upto` of the
        /// previous batch; the shipper's resend cursor after a loss).
        prev: Lsn,
        /// Stream position after applying this batch.
        upto: Lsn,
        /// The primary's end-of-stable-log: covers every contained
        /// record, so the replica may make their effects stable.
        eosl: Lsn,
        /// Stream groups `(position, [(original LSN, redo op), …])` in
        /// position order. Possibly empty: an empty batch is a pure
        /// frontier bump (commits on other partitions still move this
        /// replica's freshness horizon).
        groups: Vec<(Lsn, Vec<(Lsn, LogicalOp)>)>,
        /// In-set prune bound: once the batch is applied, the shipper
        /// guarantees every operation LSN ≤ `prune` that this replica
        /// will ever legitimately see again — a go-back-N resend, a
        /// rebuilt shipper's re-scan, a promotion's raw replay — is
        /// already applied here, so the replica may fold those LSNs
        /// under its pages' abstract-LSN low-water marks instead of
        /// carrying them in ever-growing in-sets. Replicas never
        /// receive [`TcToDc::LowWaterMark`] (the primary-side mark
        /// tracks *acks the TC received*, which say nothing about this
        /// replica); without this bound their in-sets grow with
        /// history. The shipper keeps the bound below the smallest LSN
        /// of any unresolved transaction and below the unscanned log
        /// tail, because those operations *can* still arrive raw at
        /// promotion time and must not be mistaken for duplicates.
        /// `Lsn(0)` = no new pruning knowledge.
        prune: Lsn,
    },
    /// Failover fencing: the receiving DC must reject all future
    /// mutations ([`crate::error::DcError::Fenced`]). Sent to an old
    /// primary when one of its replicas is promoted, so a deposed
    /// primary that comes back cannot accept writes that would diverge
    /// from the new primary. Reliable control traffic.
    Fence {
        /// Promoting TC.
        tc: TcId,
    },
    /// Failover promotion: the receiving read-only replica becomes the
    /// writable primary for its partition (mutations accepted from now
    /// on). The TC follows up with the ordinary restart conversation +
    /// logical redo to close any replication lag from its own log.
    /// Reliable control traffic.
    Promote {
        /// Promoting TC.
        tc: TcId,
    },
}

impl TcToDc {
    /// The sending TC.
    pub fn tc(&self) -> TcId {
        match self {
            TcToDc::Perform { tc, .. }
            | TcToDc::PerformBatch { tc, .. }
            | TcToDc::EndOfStableLog { tc, .. }
            | TcToDc::LowWaterMark { tc, .. }
            | TcToDc::Checkpoint { tc, .. }
            | TcToDc::RestartBegin { tc, .. }
            | TcToDc::RestartEnd { tc }
            | TcToDc::ShipBatch { tc, .. }
            | TcToDc::Fence { tc }
            | TcToDc::Promote { tc } => *tc,
        }
    }

    /// True for control-plane messages that must not be dropped or
    /// reordered by a simulated transport (the paper assumes the
    /// restart/checkpoint conversation is reliable; only operation
    /// traffic needs the resend/idempotence machinery). A replication
    /// [`TcToDc::ShipBatch`] is operation traffic: its loss is covered
    /// by the shipper's cursor-based resend, exactly as a lost `Perform`
    /// is covered by the TC's resend machinery.
    pub fn is_control(&self) -> bool {
        !matches!(
            self,
            TcToDc::Perform { .. } | TcToDc::PerformBatch { .. } | TcToDc::ShipBatch { .. }
        )
    }
}

/// Messages from a Data Component to a Transactional Component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DcToTc {
    /// Reply to [`TcToDc::Perform`], correlated by `req`.
    Reply {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// Request id being answered.
        req: RequestId,
        /// Outcome.
        result: Result<OpResult, DcError>,
    },
    /// A batch of replies coalesced on the DC→TC direction — the mirror
    /// image of [`TcToDc::PerformBatch`]. Each element keeps its own
    /// [`RequestId`] and outcome, so per-op correlation, resend and
    /// low-water-mark bookkeeping are exactly as for individual
    /// [`DcToTc::Reply`] messages; the TC merely unpacks the batch and
    /// advances its ack frontier once per batch instead of once per ack.
    /// A faulty transport drops or reorders the batch as a whole — a
    /// lost batch of acks is recovered by the ordinary resend contract
    /// (the DC suppresses the resends as duplicates and re-acks).
    ReplyBatch {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// The batched replies, each with its own request id.
        replies: Vec<(RequestId, Result<OpResult, DcError>)>,
    },
    /// Reply to [`TcToDc::Checkpoint`]: everything below `rssp` is
    /// stable; the TC may advance its redo scan start point.
    CheckpointDone {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// The granted redo scan start point.
        rssp: Lsn,
    },
    /// Spontaneous hint (Section 4.2.1: the DC "could spontaneously
    /// inform TC that the RSSP can advance"): the DC has proactively made
    /// pages stable.
    RsspHint {
        /// Hinting DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// LSN below which everything is stable at this DC.
        can_advance_to: Lsn,
    },
    /// Out-of-band prompt after a DC failure (Section 4.2.1: "following
    /// a crash of DC, a prompt is needed so that TC will begin the
    /// restart function").
    Crashed {
        /// The crashed (now rebooted, structures-recovered) DC.
        dc: DcId,
    },
    /// The DC has discarded post-`stable_end` effects and its structures
    /// are well-formed; the TC may begin redo resends.
    RestartReady {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
    },
    /// The restart conversation is complete.
    RestartDone {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
    },
    /// Replication ack: the replica's cumulative stream frontiers after
    /// handling a [`TcToDc::ShipBatch`] (sent even when the batch was
    /// discarded as a gap, so a stalled shipper learns where to resend
    /// from). `applied` is the freshness horizon reads are routed by;
    /// `durable` is the prefix whose effects have reached the replica's
    /// stable storage — the TC must not truncate log records a replica
    /// has not durably consumed, so `durable` (not `applied`) feeds the
    /// truncation floor. Cumulative and therefore safely faultable: a
    /// lost or reordered ack is superseded by the next one.
    ShipAck {
        /// Acking replica.
        dc: DcId,
        /// Destination (shipping) TC.
        tc: TcId,
        /// Applied stream frontier (volatile; regresses to `durable`
        /// after a replica crash).
        applied: Lsn,
        /// Durable stream frontier (survives replica crashes).
        durable: Lsn,
    },
}

impl DcToTc {
    /// The destination TC, if the message is TC-directed (a crash prompt
    /// is broadcast to every TC using the DC).
    pub fn tc(&self) -> Option<TcId> {
        match self {
            DcToTc::Reply { tc, .. }
            | DcToTc::ReplyBatch { tc, .. }
            | DcToTc::CheckpointDone { tc, .. }
            | DcToTc::RsspHint { tc, .. }
            | DcToTc::RestartReady { tc, .. }
            | DcToTc::RestartDone { tc, .. }
            | DcToTc::ShipAck { tc, .. } => Some(*tc),
            DcToTc::Crashed { .. } => None,
        }
    }

    /// The originating DC.
    pub fn dc(&self) -> DcId {
        match self {
            DcToTc::Reply { dc, .. }
            | DcToTc::ReplyBatch { dc, .. }
            | DcToTc::CheckpointDone { dc, .. }
            | DcToTc::RsspHint { dc, .. }
            | DcToTc::Crashed { dc }
            | DcToTc::RestartReady { dc, .. }
            | DcToTc::RestartDone { dc, .. }
            | DcToTc::ShipAck { dc, .. } => *dc,
        }
    }

    /// True for control-plane replies that must not be dropped or
    /// reordered by a simulated transport — the mirror of
    /// [`TcToDc::is_control`]. Only operation acks ([`DcToTc::Reply`] /
    /// [`DcToTc::ReplyBatch`]) and replication acks
    /// ([`DcToTc::ShipAck`], cumulative — superseded by the next one)
    /// are faultable: their loss is covered by the TC's resend / the
    /// shipper's cursor machinery, while the checkpoint / restart /
    /// crash conversations are assumed reliable.
    pub fn is_control(&self) -> bool {
        !matches!(
            self,
            DcToTc::Reply { .. } | DcToTc::ReplyBatch { .. } | DcToTc::ShipAck { .. }
        )
    }
}

/// A Data Component as seen through the message API.
///
/// Every DC — the B-tree DC, the custom text/spatial DCs, or any
/// application-supplied store — implements this one trait; the TC:DC
/// contracts are the *only* coupling between the components. Handlers
/// push zero or more outbound messages into `out` (a reply, a checkpoint
/// ack, a spontaneous hint, …).
pub trait DataComponentApi: Send + Sync {
    /// This DC's identity.
    fn dc_id(&self) -> DcId;

    /// Handle one inbound message, appending any outbound messages.
    fn handle(&self, msg: TcToDc, out: &mut Vec<DcToTc>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::op::ReadFlavor;

    #[test]
    fn control_plane_classification() {
        let perform = TcToDc::Perform {
            tc: TcId(1),
            req: RequestId::Read(1),
            op: LogicalOp::Read {
                table: crate::ids::TableId(1),
                key: Key::from_u64(1),
                flavor: ReadFlavor::Latest,
            },
        };
        assert!(!perform.is_control());
        assert!(TcToDc::EndOfStableLog {
            tc: TcId(1),
            eosl: Lsn(1)
        }
        .is_control());
        assert!(TcToDc::RestartBegin {
            tc: TcId(1),
            stable_end: Lsn(1)
        }
        .is_control());
    }

    #[test]
    fn message_addressing() {
        let m = DcToTc::Reply {
            dc: DcId(2),
            tc: TcId(3),
            req: RequestId::Op(Lsn(4)),
            result: Ok(OpResult::Done),
        };
        assert_eq!(m.tc(), Some(TcId(3)));
        assert_eq!(m.dc(), DcId(2));
        assert_eq!(DcToTc::Crashed { dc: DcId(9) }.tc(), None);
    }

    #[test]
    fn tc_extraction() {
        assert_eq!(TcToDc::RestartEnd { tc: TcId(7) }.tc(), TcId(7));
        assert_eq!(
            TcToDc::LowWaterMark {
                tc: TcId(8),
                lwm: Lsn(1)
            }
            .tc(),
            TcId(8)
        );
    }

    #[test]
    fn reply_batch_addressing_and_faultability() {
        let batch = DcToTc::ReplyBatch {
            dc: DcId(2),
            tc: TcId(3),
            replies: vec![(RequestId::Op(Lsn(4)), Ok(OpResult::Done))],
        };
        assert_eq!(batch.tc(), Some(TcId(3)));
        assert_eq!(batch.dc(), DcId(2));
        assert!(
            !batch.is_control(),
            "an ack batch is operation traffic: loss/reorder applies"
        );
        assert!(!DcToTc::Reply {
            dc: DcId(1),
            tc: TcId(1),
            req: RequestId::Read(1),
            result: Ok(OpResult::Done),
        }
        .is_control());
        assert!(DcToTc::CheckpointDone {
            dc: DcId(1),
            tc: TcId(1),
            rssp: Lsn(1)
        }
        .is_control());
        assert!(DcToTc::Crashed { dc: DcId(1) }.is_control());
    }

    #[test]
    fn ship_traffic_classification_and_addressing() {
        let ship = TcToDc::ShipBatch {
            tc: TcId(2),
            prev: Lsn(3),
            upto: Lsn(9),
            eosl: Lsn(9),
            prune: Lsn(0),
            groups: vec![(
                Lsn(6),
                vec![(
                    Lsn(5),
                    LogicalOp::Insert {
                        table: crate::ids::TableId(1),
                        key: Key::from_u64(1),
                        value: b"v".to_vec(),
                    },
                )],
            )],
        };
        assert!(
            !ship.is_control(),
            "a ship batch is operation traffic: loss/reorder/duplication applies"
        );
        assert_eq!(ship.tc(), TcId(2));
        assert!(TcToDc::Fence { tc: TcId(2) }.is_control());
        assert!(TcToDc::Promote { tc: TcId(2) }.is_control());
        let ack = DcToTc::ShipAck {
            dc: DcId(7),
            tc: TcId(2),
            applied: Lsn(9),
            durable: Lsn(3),
        };
        assert!(
            !ack.is_control(),
            "cumulative acks are faultable: the next one supersedes"
        );
        assert_eq!(ack.tc(), Some(TcId(2)));
        assert_eq!(ack.dc(), DcId(7));
    }

    #[test]
    fn perform_batch_is_faultable_operation_traffic() {
        let batch = TcToDc::PerformBatch {
            tc: TcId(4),
            ops: vec![(
                RequestId::Op(Lsn(9)),
                LogicalOp::Delete {
                    table: crate::ids::TableId(1),
                    key: Key::from_u64(1),
                },
            )],
        };
        assert!(
            !batch.is_control(),
            "a batch is operation traffic: loss/reorder applies"
        );
        assert_eq!(batch.tc(), TcId(4));
    }
}
