//! The TC:DC message API (paper Section 4.2.1) and the interaction
//! contracts it carries (Section 4.2).
//!
//! The kernel is "a distributed system" (Section 4.1): the TC acts as a
//! client, the DC as a server; information exchange may be synchronous
//! calls on a multi-core design or asynchronous messages in a cloud
//! deployment — both are supported by making the DC a message handler
//! ([`DataComponentApi`]) behind a transport chosen at deployment time.
//!
//! Contract summary:
//! * **Causality** — the DC never makes an operation's effects stable
//!   before the TC's log record for it is stable: enforced with
//!   [`TcToDc::EndOfStableLog`].
//! * **Unique request ids** — [`TcToDc::Perform`] carries a
//!   [`RequestId`]; mutations use the TC-log LSN.
//! * **Idempotence** — the DC tracks applied LSNs in abstract page LSNs
//!   and suppresses duplicates, enabling…
//! * **Resend** — the TC resends `Perform` (same request id) until it
//!   sees a [`DcToTc::Reply`].
//! * **Recovery** — [`TcToDc::RestartBegin`] / [`TcToDc::RestartEnd`]
//!   bracket the restart conversation; the DC makes its structures
//!   well-formed *before* acknowledging with [`DcToTc::RestartReady`].
//! * **Contract termination** — [`TcToDc::Checkpoint`] asks the DC to
//!   make everything below a new redo-scan-start-point stable, after
//!   which the TC may stop resending those operations;
//!   [`TcToDc::LowWaterMark`] lets the DC collapse abstract LSNs.

use crate::error::DcError;
use crate::ids::{DcId, RequestId, TcId};
use crate::lsn::Lsn;
use crate::op::{LogicalOp, OpResult};

/// Messages from a Transactional Component to a Data Component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcToDc {
    /// `perform_operation`: execute a logical operation exactly once.
    /// Resends reuse the same `req`.
    Perform {
        /// Sending TC.
        tc: TcId,
        /// Unique request id (the TC-log LSN for mutations).
        req: RequestId,
        /// The logical operation.
        op: LogicalOp,
    },
    /// A batch of `perform_operation` requests coalesced by the
    /// transport (the cloud deployment amortizes per-message cost over
    /// many operations). Each element keeps its own [`RequestId`] —
    /// mutations keep their TC-log LSNs — and the DC replies to every
    /// contained operation individually, so resend, idempotence and
    /// low-water-mark bookkeeping are exactly as for [`TcToDc::Perform`].
    /// A faulty transport drops or reorders the batch as a whole.
    PerformBatch {
        /// Sending TC.
        tc: TcId,
        /// The batched operations, each with its own request id.
        ops: Vec<(RequestId, LogicalOp)>,
    },
    /// `end_of_stable_log`: every operation with LSN ≤ `eosl` is stable
    /// in the TC log and may therefore be made stable by the DC (this is
    /// how write-ahead logging is enforced in an unbundled engine).
    EndOfStableLog {
        /// Sending TC.
        tc: TcId,
        /// Last stable TC-log LSN.
        eosl: Lsn,
    },
    /// `low_water_mark`: the TC has received replies for every operation
    /// with LSN ≤ `lwm`; there are no gaps below it, so the DC may use it
    /// as a page's `LSNlw` and prune in-sets (Section 5.1.2).
    LowWaterMark {
        /// Sending TC.
        tc: TcId,
        /// All-replied prefix of the TC's LSNs.
        lwm: Lsn,
    },
    /// `checkpoint`: the TC wishes to advance its redo scan start point
    /// to `new_rssp`. The DC replies with [`DcToTc::CheckpointDone`] once
    /// every page containing effects of operations with LSN < `new_rssp`
    /// is stable, releasing the TC's resend obligation below that point.
    Checkpoint {
        /// Sending TC.
        tc: TcId,
        /// Proposed new redo scan start point.
        new_rssp: Lsn,
    },
    /// `restart` (first half): the TC is recovering (or the DC crashed
    /// and the TC is driving redo). The DC must discard any effects of
    /// this TC's operations with LSN > `stable_end` — causality
    /// guarantees they are volatile — and then acknowledge with
    /// [`DcToTc::RestartReady`]. Redo resends follow as ordinary
    /// `Perform` messages.
    RestartBegin {
        /// Recovering TC.
        tc: TcId,
        /// End of the TC's stable log; later effects must be discarded.
        stable_end: Lsn,
    },
    /// `restart` (second half): redo resends and loser rollback are
    /// complete; the DC acknowledges with [`DcToTc::RestartDone`] and
    /// normal processing resumes.
    RestartEnd {
        /// Recovering TC.
        tc: TcId,
    },
}

impl TcToDc {
    /// The sending TC.
    pub fn tc(&self) -> TcId {
        match self {
            TcToDc::Perform { tc, .. }
            | TcToDc::PerformBatch { tc, .. }
            | TcToDc::EndOfStableLog { tc, .. }
            | TcToDc::LowWaterMark { tc, .. }
            | TcToDc::Checkpoint { tc, .. }
            | TcToDc::RestartBegin { tc, .. }
            | TcToDc::RestartEnd { tc } => *tc,
        }
    }

    /// True for control-plane messages that must not be dropped or
    /// reordered by a simulated transport (the paper assumes the
    /// restart/checkpoint conversation is reliable; only operation
    /// traffic needs the resend/idempotence machinery).
    pub fn is_control(&self) -> bool {
        !matches!(self, TcToDc::Perform { .. } | TcToDc::PerformBatch { .. })
    }
}

/// Messages from a Data Component to a Transactional Component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DcToTc {
    /// Reply to [`TcToDc::Perform`], correlated by `req`.
    Reply {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// Request id being answered.
        req: RequestId,
        /// Outcome.
        result: Result<OpResult, DcError>,
    },
    /// A batch of replies coalesced on the DC→TC direction — the mirror
    /// image of [`TcToDc::PerformBatch`]. Each element keeps its own
    /// [`RequestId`] and outcome, so per-op correlation, resend and
    /// low-water-mark bookkeeping are exactly as for individual
    /// [`DcToTc::Reply`] messages; the TC merely unpacks the batch and
    /// advances its ack frontier once per batch instead of once per ack.
    /// A faulty transport drops or reorders the batch as a whole — a
    /// lost batch of acks is recovered by the ordinary resend contract
    /// (the DC suppresses the resends as duplicates and re-acks).
    ReplyBatch {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// The batched replies, each with its own request id.
        replies: Vec<(RequestId, Result<OpResult, DcError>)>,
    },
    /// Reply to [`TcToDc::Checkpoint`]: everything below `rssp` is
    /// stable; the TC may advance its redo scan start point.
    CheckpointDone {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// The granted redo scan start point.
        rssp: Lsn,
    },
    /// Spontaneous hint (Section 4.2.1: the DC "could spontaneously
    /// inform TC that the RSSP can advance"): the DC has proactively made
    /// pages stable.
    RsspHint {
        /// Hinting DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
        /// LSN below which everything is stable at this DC.
        can_advance_to: Lsn,
    },
    /// Out-of-band prompt after a DC failure (Section 4.2.1: "following
    /// a crash of DC, a prompt is needed so that TC will begin the
    /// restart function").
    Crashed {
        /// The crashed (now rebooted, structures-recovered) DC.
        dc: DcId,
    },
    /// The DC has discarded post-`stable_end` effects and its structures
    /// are well-formed; the TC may begin redo resends.
    RestartReady {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
    },
    /// The restart conversation is complete.
    RestartDone {
        /// Replying DC.
        dc: DcId,
        /// Destination TC.
        tc: TcId,
    },
}

impl DcToTc {
    /// The destination TC, if the message is TC-directed (a crash prompt
    /// is broadcast to every TC using the DC).
    pub fn tc(&self) -> Option<TcId> {
        match self {
            DcToTc::Reply { tc, .. }
            | DcToTc::ReplyBatch { tc, .. }
            | DcToTc::CheckpointDone { tc, .. }
            | DcToTc::RsspHint { tc, .. }
            | DcToTc::RestartReady { tc, .. }
            | DcToTc::RestartDone { tc, .. } => Some(*tc),
            DcToTc::Crashed { .. } => None,
        }
    }

    /// The originating DC.
    pub fn dc(&self) -> DcId {
        match self {
            DcToTc::Reply { dc, .. }
            | DcToTc::ReplyBatch { dc, .. }
            | DcToTc::CheckpointDone { dc, .. }
            | DcToTc::RsspHint { dc, .. }
            | DcToTc::Crashed { dc }
            | DcToTc::RestartReady { dc, .. }
            | DcToTc::RestartDone { dc, .. } => *dc,
        }
    }

    /// True for control-plane replies that must not be dropped or
    /// reordered by a simulated transport — the mirror of
    /// [`TcToDc::is_control`]. Only operation acks ([`DcToTc::Reply`] /
    /// [`DcToTc::ReplyBatch`]) are faultable: their loss is covered by
    /// the TC's resend machinery, while the checkpoint / restart / crash
    /// conversations are assumed reliable.
    pub fn is_control(&self) -> bool {
        !matches!(self, DcToTc::Reply { .. } | DcToTc::ReplyBatch { .. })
    }
}

/// A Data Component as seen through the message API.
///
/// Every DC — the B-tree DC, the custom text/spatial DCs, or any
/// application-supplied store — implements this one trait; the TC:DC
/// contracts are the *only* coupling between the components. Handlers
/// push zero or more outbound messages into `out` (a reply, a checkpoint
/// ack, a spontaneous hint, …).
pub trait DataComponentApi: Send + Sync {
    /// This DC's identity.
    fn dc_id(&self) -> DcId;

    /// Handle one inbound message, appending any outbound messages.
    fn handle(&self, msg: TcToDc, out: &mut Vec<DcToTc>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use crate::op::ReadFlavor;

    #[test]
    fn control_plane_classification() {
        let perform = TcToDc::Perform {
            tc: TcId(1),
            req: RequestId::Read(1),
            op: LogicalOp::Read {
                table: crate::ids::TableId(1),
                key: Key::from_u64(1),
                flavor: ReadFlavor::Latest,
            },
        };
        assert!(!perform.is_control());
        assert!(TcToDc::EndOfStableLog {
            tc: TcId(1),
            eosl: Lsn(1)
        }
        .is_control());
        assert!(TcToDc::RestartBegin {
            tc: TcId(1),
            stable_end: Lsn(1)
        }
        .is_control());
    }

    #[test]
    fn message_addressing() {
        let m = DcToTc::Reply {
            dc: DcId(2),
            tc: TcId(3),
            req: RequestId::Op(Lsn(4)),
            result: Ok(OpResult::Done),
        };
        assert_eq!(m.tc(), Some(TcId(3)));
        assert_eq!(m.dc(), DcId(2));
        assert_eq!(DcToTc::Crashed { dc: DcId(9) }.tc(), None);
    }

    #[test]
    fn tc_extraction() {
        assert_eq!(TcToDc::RestartEnd { tc: TcId(7) }.tc(), TcId(7));
        assert_eq!(
            TcToDc::LowWaterMark {
                tc: TcId(8),
                lwm: Lsn(1)
            }
            .tc(),
            TcId(8)
        );
    }

    #[test]
    fn reply_batch_addressing_and_faultability() {
        let batch = DcToTc::ReplyBatch {
            dc: DcId(2),
            tc: TcId(3),
            replies: vec![(RequestId::Op(Lsn(4)), Ok(OpResult::Done))],
        };
        assert_eq!(batch.tc(), Some(TcId(3)));
        assert_eq!(batch.dc(), DcId(2));
        assert!(
            !batch.is_control(),
            "an ack batch is operation traffic: loss/reorder applies"
        );
        assert!(!DcToTc::Reply {
            dc: DcId(1),
            tc: TcId(1),
            req: RequestId::Read(1),
            result: Ok(OpResult::Done),
        }
        .is_control());
        assert!(DcToTc::CheckpointDone {
            dc: DcId(1),
            tc: TcId(1),
            rssp: Lsn(1)
        }
        .is_control());
        assert!(DcToTc::Crashed { dc: DcId(1) }.is_control());
    }

    #[test]
    fn perform_batch_is_faultable_operation_traffic() {
        let batch = TcToDc::PerformBatch {
            tc: TcId(4),
            ops: vec![(
                RequestId::Op(Lsn(9)),
                LogicalOp::Delete {
                    table: crate::ids::TableId(1),
                    key: Key::from_u64(1),
                },
            )],
        };
        assert!(
            !batch.is_control(),
            "a batch is operation traffic: loss/reorder applies"
        );
        assert_eq!(batch.tc(), TcId(4));
    }
}
