//! Stored record representation, including the *versioned data* scheme of
//! Section 6.2.2.
//!
//! For unversioned tables a record is just its payload (plus the owning
//! TC's id, the "link" of Section 6.1.2 that associates each record with
//! the single per-TC abLSN on the page so a failed TC's records can be
//! selectively reset).
//!
//! For versioned tables, an update produces a new *uncommitted* version
//! while retaining the *before* version; an insert installs a "null"
//! before version. When the updating TC commits it sends operations that
//! eliminate the before versions (promote); on abort it sends operations
//! that remove the new versions (revert). Readers from other TCs read the
//! before version when present — committed data, with no blocking and no
//! two-phase commit.

use crate::codec::{Decoder, Encoder};
use crate::error::CoreError;
use crate::ids::TcId;

/// The retained committed state underneath an uncommitted update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BeforeVersion {
    /// The record did not exist before (the pending update is an insert);
    /// read-committed readers treat the record as absent.
    Absent,
    /// The committed payload before the pending update.
    Value(Vec<u8>),
}

/// A record as stored in a DC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoredRecord {
    /// Latest payload (committed for unversioned tables; possibly
    /// uncommitted for versioned tables while `before` is `Some`).
    pub current: Vec<u8>,
    /// Retained before-version (versioned tables only).
    pub before: Option<BeforeVersion>,
    /// The TC whose update produced `current` (Section 6.1.2).
    pub owner: TcId,
}

impl StoredRecord {
    /// A committed record owned by `owner`.
    pub fn committed(payload: Vec<u8>, owner: TcId) -> Self {
        StoredRecord {
            current: payload,
            before: None,
            owner,
        }
    }

    /// Payload visible to a read-committed reader from *another* TC:
    /// the before version if one is pending, else the current payload.
    /// `None` means "record absent" for that reader.
    pub fn read_committed(&self) -> Option<&[u8]> {
        match &self.before {
            Some(BeforeVersion::Absent) => None,
            Some(BeforeVersion::Value(v)) => Some(v),
            None => Some(&self.current),
        }
    }

    /// Payload visible to the owning TC (its own latest write) and to
    /// dirty readers (Section 6.2.1 — may be uncommitted but always
    /// well-formed thanks to operation atomicity).
    pub fn read_latest(&self) -> &[u8] {
        &self.current
    }

    /// True if an uncommitted version is pending.
    pub fn has_pending(&self) -> bool {
        self.before.is_some()
    }

    /// Apply a versioned update: keep the committed state as the before
    /// version (first update wins the slot — later updates by the same
    /// transaction must not overwrite the original committed state).
    pub fn versioned_update(&mut self, new_payload: Vec<u8>, owner: TcId) {
        if self.before.is_none() {
            self.before = Some(BeforeVersion::Value(std::mem::take(&mut self.current)));
        }
        self.current = new_payload;
        self.owner = owner;
    }

    /// Commit the pending version: drop the before version.
    pub fn promote(&mut self) {
        self.before = None;
    }

    /// Abort the pending version: restore the before version. Returns
    /// `false` if the record should be removed entirely (the pending
    /// update was an insert).
    #[must_use]
    pub fn revert(&mut self) -> bool {
        match self.before.take() {
            Some(BeforeVersion::Absent) => false,
            Some(BeforeVersion::Value(v)) => {
                self.current = v;
                true
            }
            None => true,
        }
    }

    /// Encoded size in a page image.
    pub fn encoded_size(&self) -> usize {
        let before = match &self.before {
            None => 1,
            Some(BeforeVersion::Absent) => 1,
            Some(BeforeVersion::Value(v)) => 1 + 4 + v.len(),
        };
        2 + 4 + self.current.len() + before
    }

    /// Serialize into a page image.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u16(self.owner.0);
        enc.bytes(&self.current);
        match &self.before {
            None => enc.u8(0),
            Some(BeforeVersion::Absent) => enc.u8(1),
            Some(BeforeVersion::Value(v)) => {
                enc.u8(2);
                enc.bytes(v);
            }
        }
    }

    /// Deserialize from a page image.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CoreError> {
        let owner = TcId(dec.u16()?);
        let current = dec.bytes()?.to_vec();
        let before = match dec.u8()? {
            0 => None,
            1 => Some(BeforeVersion::Absent),
            2 => Some(BeforeVersion::Value(dec.bytes()?.to_vec())),
            _ => {
                return Err(CoreError::Codec {
                    what: "bad before-version tag",
                    at: 0,
                })
            }
        };
        Ok(StoredRecord {
            current,
            before,
            owner,
        })
    }
}

/// Static description of a table hosted by a DC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableSpec {
    /// Table identifier (agreed between TC and DC at deployment time).
    pub id: crate::ids::TableId,
    /// Human-readable name.
    pub name: String,
    /// Whether the table keeps before-versions for cross-TC
    /// read-committed sharing (Section 6.2.2).
    pub versioned: bool,
}

impl TableSpec {
    /// Convenience constructor for an unversioned table.
    pub fn plain(id: crate::ids::TableId, name: &str) -> Self {
        TableSpec {
            id,
            name: name.to_string(),
            versioned: false,
        }
    }

    /// Convenience constructor for a versioned table.
    pub fn versioned(id: crate::ids::TableId, name: &str) -> Self {
        TableSpec {
            id,
            name: name.to_string(),
            versioned: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_record_reads_same_everywhere() {
        let r = StoredRecord::committed(b"v1".to_vec(), TcId(1));
        assert_eq!(r.read_committed(), Some(&b"v1"[..]));
        assert_eq!(r.read_latest(), b"v1");
        assert!(!r.has_pending());
    }

    #[test]
    fn versioned_update_exposes_before_to_readers() {
        let mut r = StoredRecord::committed(b"old".to_vec(), TcId(1));
        r.versioned_update(b"new".to_vec(), TcId(1));
        assert_eq!(r.read_latest(), b"new", "owner sees its own update");
        assert_eq!(
            r.read_committed(),
            Some(&b"old"[..]),
            "readers see committed"
        );
        r.promote();
        assert_eq!(r.read_committed(), Some(&b"new"[..]));
    }

    #[test]
    fn double_update_preserves_original_before() {
        let mut r = StoredRecord::committed(b"v0".to_vec(), TcId(1));
        r.versioned_update(b"v1".to_vec(), TcId(1));
        r.versioned_update(b"v2".to_vec(), TcId(1));
        assert_eq!(r.read_committed(), Some(&b"v0"[..]));
        assert!(r.revert());
        assert_eq!(r.read_latest(), b"v0");
    }

    #[test]
    fn versioned_insert_is_absent_to_readers_until_commit() {
        let mut r = StoredRecord {
            current: b"new".to_vec(),
            before: Some(BeforeVersion::Absent),
            owner: TcId(2),
        };
        assert_eq!(r.read_committed(), None);
        assert!(!r.revert(), "revert of an insert removes the record");
    }

    #[test]
    fn encode_decode_roundtrip() {
        for r in [
            StoredRecord::committed(b"abc".to_vec(), TcId(3)),
            StoredRecord {
                current: b"x".to_vec(),
                before: Some(BeforeVersion::Absent),
                owner: TcId(1),
            },
            StoredRecord {
                current: b"y".to_vec(),
                before: Some(BeforeVersion::Value(b"z".to_vec())),
                owner: TcId(9),
            },
        ] {
            let mut e = Encoder::new();
            r.encode(&mut e);
            let bytes = e.finish();
            assert_eq!(bytes.len(), r.encoded_size());
            let back = StoredRecord::decode(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(back, r);
        }
    }
}
