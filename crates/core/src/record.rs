//! Stored record representation: the *versioned data* scheme of Section
//! 6.2.2 plus the MVCC version chain that backs snapshot reads.
//!
//! For unversioned tables a record is its payload (plus the owning TC's
//! id, the "link" of Section 6.1.2 that associates each record with the
//! single per-TC abLSN on the page so a failed TC's records can be
//! selectively reset).
//!
//! For versioned tables, an update produces a new *uncommitted* version
//! while retaining the *before* version; an insert installs a "null"
//! before version. When the updating TC commits it sends operations that
//! eliminate the before versions (promote); on abort it sends operations
//! that remove the new versions (revert). Readers from other TCs read the
//! before version when present — committed data, with no blocking and no
//! two-phase commit.
//!
//! ## MVCC version chain
//!
//! Every record additionally keeps a short history of *committed*
//! payloads keyed by **commit LSN** (the redo log totally orders
//! commits). A mutation installs its payload as `current` with
//! `current_commit = None`; the TC's post-commit [`StampCommit`]
//! operation fills in the commit LSN, publishing the version to
//! snapshot readers. When a later write displaces a stamped `current`,
//! the displaced payload moves into `versions`; a displaced *unstamped*
//! payload (an intermediate write of the same transaction, or an aborted
//! write) parks in `staged` until garbage collection reclaims it.
//! Deletes become tombstones (`tomb`) so a snapshot older than the
//! delete can still see the record; tombstoned records are physically
//! removed only once no retained snapshot can need them.
//!
//! Commit LSNs are meaningful only within one TC's log. When ownership
//! of a record moves to a different TC the history is cleared: versions
//! from the old owner's LSN space are not comparable to the new owner's
//! snapshot positions.
//!
//! [`StampCommit`]: crate::op::LogicalOp::StampCommit

use crate::codec::{Decoder, Encoder};
use crate::error::CoreError;
use crate::ids::TcId;
use crate::lsn::Lsn;

/// The retained committed state underneath an uncommitted update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BeforeVersion {
    /// The record did not exist before (the pending update is an insert);
    /// read-committed readers treat the record as absent.
    Absent,
    /// The committed payload before the pending update.
    Value(Vec<u8>),
}

/// A record as stored in a DC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StoredRecord {
    /// Latest payload (committed for unversioned tables; possibly
    /// uncommitted for versioned tables while `before` is `Some`).
    pub current: Vec<u8>,
    /// Retained before-version (versioned tables only).
    pub before: Option<BeforeVersion>,
    /// The TC whose update produced `current` (Section 6.1.2).
    pub owner: TcId,
    /// True if the latest operation was a delete: the record is absent
    /// to latest/committed readers but its history still serves
    /// snapshots older than the delete.
    pub tomb: bool,
    /// LSN of the operation that produced `current` (what a
    /// `StampCommit` matches against).
    pub current_op: Lsn,
    /// Commit LSN of `current` once its transaction's stamp has
    /// arrived; `None` while in flight (or aborted).
    pub current_commit: Option<Lsn>,
    /// Committed history, ascending by commit LSN, excluding `current`.
    /// A `None` payload is a delete tombstone version.
    pub versions: Vec<(Lsn, Option<Vec<u8>>)>,
    /// Displaced payloads whose stamp has not arrived, keyed by the op
    /// LSN that created them. Normally dead (intermediate writes of one
    /// transaction, or aborted writes); reclaimed by GC.
    pub staged: Vec<(Lsn, Option<Vec<u8>>)>,
}

impl StoredRecord {
    /// A record committed "since forever" (visible to every snapshot).
    /// Test/bootstrap convenience; the engine uses [`StoredRecord::new`]
    /// with the creating op's LSN.
    pub fn committed(payload: Vec<u8>, owner: TcId) -> Self {
        StoredRecord {
            current: payload,
            before: None,
            owner,
            tomb: false,
            current_op: Lsn(0),
            current_commit: Some(Lsn(0)),
            versions: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// A freshly inserted record: unstamped until the transaction's
    /// commit stamp arrives.
    pub fn new(payload: Vec<u8>, owner: TcId, op: Lsn) -> Self {
        StoredRecord {
            current: payload,
            before: None,
            owner,
            tomb: false,
            current_op: op,
            current_commit: None,
            versions: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// Payload visible to a read-committed reader from *another* TC:
    /// the before version if one is pending, else the current payload.
    /// `None` means "record absent" for that reader.
    pub fn read_committed(&self) -> Option<&[u8]> {
        match &self.before {
            Some(BeforeVersion::Absent) => None,
            Some(BeforeVersion::Value(v)) => Some(v),
            None if self.tomb => None,
            None => Some(&self.current),
        }
    }

    /// Payload visible to the owning TC (its own latest write) and to
    /// dirty readers (Section 6.2.1): `None` if the record is a delete
    /// tombstone.
    pub fn read_latest(&self) -> Option<&[u8]> {
        if self.tomb {
            None
        } else {
            Some(&self.current)
        }
    }

    /// Payload visible to a snapshot at `at`: the newest version whose
    /// commit LSN is `<= at`. Unstamped data is invisible. Only
    /// meaningful when `at` is in the owning TC's LSN space.
    pub fn read_snapshot(&self, at: Lsn) -> Option<&[u8]> {
        if let Some(c) = self.current_commit {
            if c <= at {
                return if self.tomb { None } else { Some(&self.current) };
            }
        }
        self.versions
            .iter()
            .rev()
            .find(|(c, _)| *c <= at)
            .and_then(|(_, v)| v.as_deref())
    }

    /// True if an uncommitted version is pending.
    pub fn has_pending(&self) -> bool {
        self.before.is_some()
    }

    /// Move `current` into the history (`versions` if stamped, `staged`
    /// if its stamp never arrived) ahead of an overwrite.
    fn displace(&mut self) {
        let old = std::mem::take(&mut self.current);
        let payload = if self.tomb { None } else { Some(old) };
        match self.current_commit.take() {
            Some(c) => self.versions.push((c, payload)),
            None => self.staged.push((self.current_op, payload)),
        }
    }

    /// Overwrite with a new (unstamped) payload, retaining the old
    /// state in the version chain. Clears a tombstone (insert-over-
    /// delete). A change of owner drops the history: the old owner's
    /// commit LSNs are not comparable in the new owner's log.
    pub fn overwrite(&mut self, payload: Vec<u8>, owner: TcId, op: Lsn) {
        if owner != self.owner {
            self.versions.clear();
            self.staged.clear();
            self.current_commit = None;
            self.current.clear();
            self.tomb = false;
        } else {
            self.displace();
        }
        self.current = payload;
        self.owner = owner;
        self.tomb = false;
        self.current_op = op;
        self.current_commit = None;
    }

    /// Delete: become an (unstamped) tombstone, retaining the old state
    /// in the version chain.
    pub fn delete(&mut self, owner: TcId, op: Lsn) {
        if owner != self.owner {
            self.versions.clear();
            self.staged.clear();
            self.current_commit = None;
        } else {
            self.displace();
        }
        self.current = Vec::new();
        self.owner = owner;
        self.tomb = true;
        self.current_op = op;
        self.current_commit = None;
    }

    /// Apply a commit stamp for the version created by op LSN `op`.
    /// Returns true if a version was stamped (false: the target was
    /// already displaced-and-stamped, or never existed here — a resend).
    pub fn stamp(&mut self, op: Lsn, commit: Lsn) -> bool {
        if self.current_op == op && self.current_commit.is_none() {
            self.current_commit = Some(commit);
            return true;
        }
        if let Some(i) = self.staged.iter().position(|(o, _)| *o == op) {
            let (_, payload) = self.staged.remove(i);
            let at = self.versions.partition_point(|(c, _)| *c <= commit);
            self.versions.insert(at, (commit, payload));
            return true;
        }
        false
    }

    /// Garbage-collect history no snapshot at or above `floor` can
    /// need: versions older than the newest one visible at `floor`, and
    /// staged payloads whose op LSN fell below `floor` (their stamp can
    /// no longer be outstanding). Returns the number of entries pruned.
    pub fn gc(&mut self, floor: Lsn) -> usize {
        let before = self.versions.len() + self.staged.len();
        let newest_covered = if self.current_commit.is_some_and(|c| c <= floor) {
            // `current` serves every snapshot >= floor.
            self.versions.len()
        } else {
            // Keep the newest version <= floor as the floor fallback.
            self.versions
                .partition_point(|(c, _)| *c <= floor)
                .saturating_sub(1)
        };
        self.versions.drain(..newest_covered);
        self.staged.retain(|(o, _)| *o > floor);
        before - (self.versions.len() + self.staged.len())
    }

    /// True once a tombstone can be physically removed: no history or
    /// pending state remains, and either the delete is stamped below
    /// `floor`, or it is unstamped with an op LSN below `floor` — its
    /// stamp can no longer be outstanding (an aborted delete, or the
    /// rollback of an insert).
    pub fn tomb_reclaimable(&self, floor: Lsn) -> bool {
        self.tomb
            && self.before.is_none()
            && self.versions.is_empty()
            && self.staged.is_empty()
            && match self.current_commit {
                Some(c) => c <= floor,
                None => self.current_op <= floor,
            }
    }

    /// Retained version-chain entries (history + staged), for memory
    /// accounting.
    pub fn chain_len(&self) -> usize {
        self.versions.len() + self.staged.len()
    }

    /// Apply a versioned update: keep the committed state as the before
    /// version (first update wins the slot — later updates by the same
    /// transaction must not overwrite the original committed state).
    pub fn versioned_update(&mut self, new_payload: Vec<u8>, owner: TcId, op: Lsn) {
        if self.before.is_none() {
            self.before = Some(BeforeVersion::Value(self.current.clone()));
        }
        self.overwrite(new_payload, owner, op);
    }

    /// Commit the pending version: drop the before version.
    pub fn promote(&mut self) {
        self.before = None;
    }

    /// Abort the pending version: restore the before version. Returns
    /// `false` if the record should be removed entirely (the pending
    /// update was an insert).
    #[must_use]
    pub fn revert(&mut self) -> bool {
        match self.before.take() {
            Some(BeforeVersion::Absent) => false,
            Some(BeforeVersion::Value(v)) => {
                // The displaced committed state was pushed into the
                // version history when the pending version was
                // installed; reclaim it so the chain again excludes
                // `current`.
                let reclaim = self
                    .versions
                    .last()
                    .map(|(_, val)| val.as_deref() == Some(v.as_slice()))
                    .unwrap_or(false);
                self.current_commit = if reclaim {
                    self.versions.pop().map(|(c, _)| c)
                } else {
                    None
                };
                self.current = v;
                self.current_op = Lsn(0);
                self.tomb = false;
                true
            }
            None => true,
        }
    }

    fn version_entry_size(v: &Option<Vec<u8>>) -> usize {
        8 + 1 + v.as_ref().map_or(0, |b| 4 + b.len())
    }

    fn encode_version_entry(enc: &mut Encoder, (lsn, v): &(Lsn, Option<Vec<u8>>)) {
        enc.u64(lsn.0);
        match v {
            None => enc.u8(0),
            Some(b) => {
                enc.u8(1);
                enc.bytes(b);
            }
        }
    }

    fn decode_version_entry(dec: &mut Decoder<'_>) -> Result<(Lsn, Option<Vec<u8>>), CoreError> {
        let lsn = Lsn(dec.u64()?);
        let v = match dec.u8()? {
            0 => None,
            1 => Some(dec.bytes()?.to_vec()),
            _ => {
                return Err(CoreError::Codec {
                    what: "bad version-entry tag",
                    at: 0,
                })
            }
        };
        Ok((lsn, v))
    }

    /// Encoded size in a page image.
    pub fn encoded_size(&self) -> usize {
        let before = match &self.before {
            None => 1,
            Some(BeforeVersion::Absent) => 1,
            Some(BeforeVersion::Value(v)) => 1 + 4 + v.len(),
        };
        let commit = match self.current_commit {
            None => 1,
            Some(_) => 1 + 8,
        };
        let chain: usize = self
            .versions
            .iter()
            .chain(self.staged.iter())
            .map(|(_, v)| Self::version_entry_size(v))
            .sum();
        2 + 4 + self.current.len() + before + 1 + 8 + commit + 4 + 4 + chain
    }

    /// Serialize into a page image.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u16(self.owner.0);
        enc.bytes(&self.current);
        match &self.before {
            None => enc.u8(0),
            Some(BeforeVersion::Absent) => enc.u8(1),
            Some(BeforeVersion::Value(v)) => {
                enc.u8(2);
                enc.bytes(v);
            }
        }
        enc.bool(self.tomb);
        enc.u64(self.current_op.0);
        match self.current_commit {
            None => enc.u8(0),
            Some(c) => {
                enc.u8(1);
                enc.u64(c.0);
            }
        }
        enc.u32(self.versions.len() as u32);
        for e in &self.versions {
            Self::encode_version_entry(enc, e);
        }
        enc.u32(self.staged.len() as u32);
        for e in &self.staged {
            Self::encode_version_entry(enc, e);
        }
    }

    /// Deserialize from a page image.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CoreError> {
        let owner = TcId(dec.u16()?);
        let current = dec.bytes()?.to_vec();
        let before = match dec.u8()? {
            0 => None,
            1 => Some(BeforeVersion::Absent),
            2 => Some(BeforeVersion::Value(dec.bytes()?.to_vec())),
            _ => {
                return Err(CoreError::Codec {
                    what: "bad before-version tag",
                    at: 0,
                })
            }
        };
        let tomb = dec.bool()?;
        let current_op = Lsn(dec.u64()?);
        let current_commit = match dec.u8()? {
            0 => None,
            1 => Some(Lsn(dec.u64()?)),
            _ => {
                return Err(CoreError::Codec {
                    what: "bad commit-stamp tag",
                    at: 0,
                })
            }
        };
        let nv = dec.u32()? as usize;
        let mut versions = Vec::with_capacity(nv);
        for _ in 0..nv {
            versions.push(Self::decode_version_entry(dec)?);
        }
        let ns = dec.u32()? as usize;
        let mut staged = Vec::with_capacity(ns);
        for _ in 0..ns {
            staged.push(Self::decode_version_entry(dec)?);
        }
        Ok(StoredRecord {
            current,
            before,
            owner,
            tomb,
            current_op,
            current_commit,
            versions,
            staged,
        })
    }
}

/// Static description of a table hosted by a DC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableSpec {
    /// Table identifier (agreed between TC and DC at deployment time).
    pub id: crate::ids::TableId,
    /// Human-readable name.
    pub name: String,
    /// Whether the table keeps before-versions for cross-TC
    /// read-committed sharing (Section 6.2.2).
    pub versioned: bool,
}

impl TableSpec {
    /// Convenience constructor for an unversioned table.
    pub fn plain(id: crate::ids::TableId, name: &str) -> Self {
        TableSpec {
            id,
            name: name.to_string(),
            versioned: false,
        }
    }

    /// Convenience constructor for a versioned table.
    pub fn versioned(id: crate::ids::TableId, name: &str) -> Self {
        TableSpec {
            id,
            name: name.to_string(),
            versioned: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_record_reads_same_everywhere() {
        let r = StoredRecord::committed(b"v1".to_vec(), TcId(1));
        assert_eq!(r.read_committed(), Some(&b"v1"[..]));
        assert_eq!(r.read_latest(), Some(&b"v1"[..]));
        assert_eq!(r.read_snapshot(Lsn(0)), Some(&b"v1"[..]));
        assert!(!r.has_pending());
    }

    #[test]
    fn versioned_update_exposes_before_to_readers() {
        let mut r = StoredRecord::committed(b"old".to_vec(), TcId(1));
        r.versioned_update(b"new".to_vec(), TcId(1), Lsn(5));
        assert_eq!(r.read_latest(), Some(&b"new"[..]), "owner sees its write");
        assert_eq!(
            r.read_committed(),
            Some(&b"old"[..]),
            "readers see committed"
        );
        r.promote();
        assert_eq!(r.read_committed(), Some(&b"new"[..]));
    }

    #[test]
    fn double_update_preserves_original_before() {
        let mut r = StoredRecord::committed(b"v0".to_vec(), TcId(1));
        r.versioned_update(b"v1".to_vec(), TcId(1), Lsn(5));
        r.versioned_update(b"v2".to_vec(), TcId(1), Lsn(6));
        assert_eq!(r.read_committed(), Some(&b"v0"[..]));
        assert!(r.revert());
        assert_eq!(r.read_latest(), Some(&b"v0"[..]));
        assert_eq!(
            r.current_commit,
            Some(Lsn(0)),
            "revert reclaims the displaced committed state"
        );
    }

    #[test]
    fn versioned_insert_is_absent_to_readers_until_commit() {
        let mut r = StoredRecord::new(b"new".to_vec(), TcId(2), Lsn(7));
        r.before = Some(BeforeVersion::Absent);
        assert_eq!(r.read_committed(), None);
        assert!(!r.revert(), "revert of an insert removes the record");
    }

    #[test]
    fn snapshot_sees_version_at_or_below_its_lsn() {
        let mut r = StoredRecord::new(b"a".to_vec(), TcId(1), Lsn(10));
        assert_eq!(r.read_snapshot(Lsn(100)), None, "unstamped is invisible");
        assert!(r.stamp(Lsn(10), Lsn(12)));
        assert_eq!(r.read_snapshot(Lsn(11)), None);
        assert_eq!(r.read_snapshot(Lsn(12)), Some(&b"a"[..]));
        r.overwrite(b"b".to_vec(), TcId(1), Lsn(20));
        assert!(r.stamp(Lsn(20), Lsn(22)));
        assert_eq!(r.read_snapshot(Lsn(12)), Some(&b"a"[..]));
        assert_eq!(r.read_snapshot(Lsn(21)), Some(&b"a"[..]));
        assert_eq!(r.read_snapshot(Lsn(22)), Some(&b"b"[..]));
    }

    #[test]
    fn tombstone_hides_record_but_serves_old_snapshots() {
        let mut r = StoredRecord::new(b"a".to_vec(), TcId(1), Lsn(10));
        assert!(r.stamp(Lsn(10), Lsn(12)));
        r.delete(TcId(1), Lsn(20));
        assert_eq!(r.read_latest(), None);
        assert_eq!(r.read_committed(), None);
        assert_eq!(r.read_snapshot(Lsn(12)), Some(&b"a"[..]));
        assert!(r.stamp(Lsn(20), Lsn(22)));
        assert_eq!(r.read_snapshot(Lsn(22)), None, "snapshot sees the delete");
        assert!(!r.tomb_reclaimable(Lsn(12)));
        assert_eq!(r.gc(Lsn(22)), 1);
        assert!(r.tomb_reclaimable(Lsn(22)));
        // Insert over the tombstone revives the record.
        r.overwrite(b"c".to_vec(), TcId(1), Lsn(30));
        assert_eq!(r.read_latest(), Some(&b"c"[..]));
    }

    #[test]
    fn displaced_unstamped_write_stamps_into_history() {
        let mut r = StoredRecord::new(b"a".to_vec(), TcId(1), Lsn(10));
        r.overwrite(b"b".to_vec(), TcId(1), Lsn(11));
        assert_eq!(r.staged.len(), 1, "unstamped displaced value parks");
        assert!(r.stamp(Lsn(10), Lsn(12)), "late stamp finds it");
        assert_eq!(r.read_snapshot(Lsn(12)), Some(&b"a"[..]));
        assert!(!r.stamp(Lsn(10), Lsn(12)), "duplicate stamp is a no-op");
    }

    #[test]
    fn gc_prunes_below_floor_but_keeps_floor_fallback() {
        let mut r = StoredRecord::new(b"a".to_vec(), TcId(1), Lsn(10));
        assert!(r.stamp(Lsn(10), Lsn(12)));
        r.overwrite(b"b".to_vec(), TcId(1), Lsn(20));
        assert!(r.stamp(Lsn(20), Lsn(22)));
        r.overwrite(b"c".to_vec(), TcId(1), Lsn(30));
        assert_eq!(r.chain_len(), 2);
        // Floor 25: current is unstamped, so the newest version <= 25
        // (commit 22) must survive as the fallback.
        assert_eq!(r.gc(Lsn(25)), 1);
        assert_eq!(r.read_snapshot(Lsn(25)), Some(&b"b"[..]));
        assert!(r.stamp(Lsn(30), Lsn(32)));
        // Now current covers everything >= its commit.
        assert_eq!(r.gc(Lsn(32)), 1);
        assert_eq!(r.chain_len(), 0);
        assert_eq!(r.read_snapshot(Lsn(32)), Some(&b"c"[..]));
    }

    #[test]
    fn ownership_change_clears_history() {
        let mut r = StoredRecord::new(b"a".to_vec(), TcId(1), Lsn(10));
        assert!(r.stamp(Lsn(10), Lsn(12)));
        r.overwrite(b"b".to_vec(), TcId(2), Lsn(3));
        assert_eq!(r.chain_len(), 0, "old owner's LSN space dropped");
        assert_eq!(r.owner, TcId(2));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut stamped = StoredRecord::new(b"x".to_vec(), TcId(1), Lsn(5));
        assert!(stamped.stamp(Lsn(5), Lsn(7)));
        stamped.overwrite(b"y".to_vec(), TcId(1), Lsn(9));
        let mut tomb = StoredRecord::new(b"t".to_vec(), TcId(4), Lsn(2));
        tomb.delete(TcId(4), Lsn(3));
        let mut vers = StoredRecord::committed(b"y".to_vec(), TcId(9));
        vers.before = Some(BeforeVersion::Value(b"z".to_vec()));
        for r in [
            StoredRecord::committed(b"abc".to_vec(), TcId(3)),
            StoredRecord::new(b"x".to_vec(), TcId(1), Lsn(44)),
            stamped,
            tomb,
            vers,
        ] {
            let mut e = Encoder::new();
            r.encode(&mut e);
            let bytes = e.finish();
            assert_eq!(bytes.len(), r.encoded_size());
            let back = StoredRecord::decode(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(back, r);
        }
    }
}
