//! Log sequence numbers and the paper's **abstract page LSN** (Section 5.1.2).
//!
//! In a bundled kernel the idempotence test during redo is
//! `operation LSN <= page LSN`: the LSN is assigned while the page is
//! latched, so LSN order equals application order. In the unbundled kernel
//! the TC assigns LSNs *before* the DC decides the order in which
//! operations reach a page, so non-conflicting operations can execute out
//! of LSN order and a single page LSN is no longer a sound summary.
//!
//! The paper's fix is the *abstract LSN* `abLSN = <LSNlw, {LSNin}>`:
//! a low-water LSN below which every operation is known applied, plus the
//! explicit set of applied LSNs above it. [`AbstractLsn::includes`]
//! implements the generalized `<=` test; [`AbstractLsn::advance_lw`]
//! consumes the TC-supplied low-water mark (LWM) to prune the set;
//! [`AbstractLsn::merge`] is the rule used when two pages are consolidated.

use crate::codec::{Decoder, Encoder};
use crate::error::CoreError;
use std::fmt;

/// A TC log sequence number. `Lsn(0)` is the null LSN (nothing logged).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN: below every real LSN.
    pub const NULL: Lsn = Lsn(0);
    /// Largest representable LSN, used as an "infinity" bound.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Next LSN in sequence.
    #[inline]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }

    /// True if this is the null LSN.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A DC log sequence number (`dLSN`, Section 5.2.2). The DC stamps pages
/// with the dLSN of the last *system transaction* record applied to them,
/// making structure-modification recovery idempotent with the conventional
/// scalar test — system transactions replay in DC-log order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DLsn(pub u64);

impl DLsn {
    /// The null dLSN.
    pub const NULL: DLsn = DLsn(0);

    /// Next dLSN in sequence.
    #[inline]
    pub fn next(self) -> DLsn {
        DLsn(self.0 + 1)
    }
}

impl fmt::Display for DLsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The abstract page LSN of Section 5.1.2: `<LSNlw, {LSNin}>`.
///
/// *Every* operation with LSN ≤ `lw` is applied; additionally exactly the
/// operations whose LSNs appear in `ins` (all > `lw`) are applied. The
/// structure accurately captures which operations' results a page state
/// reflects even when operations arrive out of LSN order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AbstractLsn {
    lw: Lsn,
    /// Sorted, deduplicated LSNs strictly greater than `lw`.
    ins: Vec<Lsn>,
}

impl AbstractLsn {
    /// An abstract LSN that includes nothing.
    pub fn new() -> Self {
        AbstractLsn {
            lw: Lsn::NULL,
            ins: Vec::new(),
        }
    }

    /// An abstract LSN equivalent to a scalar page LSN: includes every
    /// operation with LSN ≤ `lw` and nothing else.
    pub fn from_scalar(lw: Lsn) -> Self {
        AbstractLsn {
            lw,
            ins: Vec::new(),
        }
    }

    /// The low-water component `LSNlw`.
    #[inline]
    pub fn lw(&self) -> Lsn {
        self.lw
    }

    /// The explicit in-set `{LSNin}` (sorted ascending, all > `lw`).
    #[inline]
    pub fn ins(&self) -> &[Lsn] {
        &self.ins
    }

    /// The paper's generalized `<=` test:
    /// `LSNi <= abLSN  ⇔  LSNi <= LSNlw ∨ LSNi ∈ {LSNin}`.
    ///
    /// When true, the page already reflects the operation and redo (or a
    /// duplicate delivery) must be suppressed.
    #[inline]
    pub fn includes(&self, lsn: Lsn) -> bool {
        lsn <= self.lw || self.ins.binary_search(&lsn).is_ok()
    }

    /// Record that the operation with `lsn` has been applied to the page.
    ///
    /// Idempotent; ignores LSNs already included.
    pub fn record(&mut self, lsn: Lsn) {
        if lsn <= self.lw {
            return;
        }
        if let Err(pos) = self.ins.binary_search(&lsn) {
            self.ins.insert(pos, lsn);
        }
    }

    /// Apply a TC-supplied low-water mark (Section 5.1.2, "Establishing
    /// LSNlw"): the TC guarantees it has received replies for every
    /// operation with LSN ≤ `lwm`, so every such operation is applied on
    /// whichever page it targeted. Raises `lw` and prunes the in-set.
    pub fn advance_lw(&mut self, lwm: Lsn) {
        if lwm <= self.lw {
            return;
        }
        self.lw = lwm;
        self.ins.retain(|&l| l > lwm);
    }

    /// Collapse to a scalar if the in-set is empty (the state after the
    /// LWM has caught up with every included operation). Returns `None`
    /// if explicit entries remain.
    pub fn as_scalar(&self) -> Option<Lsn> {
        if self.ins.is_empty() {
            Some(self.lw)
        } else {
            None
        }
    }

    /// Largest LSN whose effects are included in the page. This is what
    /// causality compares against the TC's end-of-stable-log before the
    /// page may be flushed.
    pub fn max_included(&self) -> Lsn {
        self.ins.last().copied().unwrap_or(self.lw)
    }

    /// Number of explicit in-set entries (page-sync policies bound this).
    #[inline]
    pub fn in_set_len(&self) -> usize {
        self.ins.len()
    }

    /// Merge rule for page consolidation (Section 5.2.2, "Page
    /// Deletes/Consolidates"): the consolidated page inherits
    /// `max` of the low-water components and the union of the in-sets.
    ///
    /// Soundness: `lw` derives from the TC's global LWM, so the larger of
    /// the two is valid for any page; the in-sets contain only *applied*
    /// operations, and every applied operation's effect survives into the
    /// consolidated page.
    pub fn merge(&self, other: &AbstractLsn) -> AbstractLsn {
        let lw = self.lw.max(other.lw);
        let mut ins: Vec<Lsn> = Vec::with_capacity(self.ins.len() + other.ins.len());
        let (mut a, mut b) = (self.ins.iter().peekable(), other.ins.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    let min = x.min(y);
                    if x == min {
                        a.next();
                    }
                    if y == min {
                        b.next();
                    }
                    if min > lw {
                        ins.push(min);
                    }
                }
                (Some(&&x), None) => {
                    a.next();
                    if x > lw {
                        ins.push(x);
                    }
                }
                (None, Some(&&y)) => {
                    b.next();
                    if y > lw {
                        ins.push(y);
                    }
                }
                (None, None) => break,
            }
        }
        AbstractLsn { lw, ins }
    }

    /// Bytes this abstract LSN occupies when stored in a page image
    /// (Section 5.1.2 "Page Sync" algorithm 2 stores the full structure).
    pub fn encoded_size(&self) -> usize {
        8 + 4 + 8 * self.ins.len()
    }

    /// Serialize into a page/log image.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.lw.0);
        enc.u32(self.ins.len() as u32);
        for l in &self.ins {
            enc.u64(l.0);
        }
    }

    /// Deserialize from a page/log image.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CoreError> {
        let lw = Lsn(dec.u64()?);
        let n = dec.u32()? as usize;
        let mut ins = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ins.push(Lsn(dec.u64()?));
        }
        Ok(AbstractLsn { lw, ins })
    }
}

impl fmt::Display for AbstractLsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{{", self.lw)?;
        for (i, l) in self.ins.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}>")
    }
}

/// Per-TC abstract LSNs for a page shared by multiple TCs (Section 6.1.1).
///
/// TCs do not coordinate their logs, so their LSN spaces are unrelated and
/// the DC must track idempotence separately per TC. Pages touched by a
/// single TC pay for exactly one entry (the common case the paper
/// optimizes for).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PerTcAbLsn {
    /// Sorted by `TcId`; nearly always length 0 or 1.
    entries: Vec<(crate::ids::TcId, AbstractLsn)>,
}

impl PerTcAbLsn {
    /// Empty map.
    pub fn new() -> Self {
        PerTcAbLsn {
            entries: Vec::new(),
        }
    }

    /// The abstract LSN for `tc`, if the TC has data on this page.
    pub fn get(&self, tc: crate::ids::TcId) -> Option<&AbstractLsn> {
        self.entries
            .binary_search_by_key(&tc, |(t, _)| *t)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Mutable access, creating an empty abstract LSN on first touch.
    pub fn get_mut(&mut self, tc: crate::ids::TcId) -> &mut AbstractLsn {
        match self.entries.binary_search_by_key(&tc, |(t, _)| *t) {
            Ok(i) => &mut self.entries[i].1,
            Err(i) => {
                self.entries.insert(i, (tc, AbstractLsn::new()));
                &mut self.entries[i].1
            }
        }
    }

    /// Iterate `(tc, abLSN)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (crate::ids::TcId, &AbstractLsn)> {
        self.entries.iter().map(|(t, a)| (*t, a))
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (crate::ids::TcId, &mut AbstractLsn)> {
        self.entries.iter_mut().map(|(t, a)| (*t, a))
    }

    /// Number of TCs with data on the page.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no TC has stamped this page.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove a TC's entry entirely (used by page reset after a TC crash).
    pub fn remove(&mut self, tc: crate::ids::TcId) {
        if let Ok(i) = self.entries.binary_search_by_key(&tc, |(t, _)| *t) {
            self.entries.remove(i);
        }
    }

    /// Replace a TC's entry (page reset restores the disk version's view).
    pub fn set(&mut self, tc: crate::ids::TcId, ab: AbstractLsn) {
        *self.get_mut(tc) = ab;
    }

    /// Merge rule for consolidation across all TCs.
    pub fn merge(&self, other: &PerTcAbLsn) -> PerTcAbLsn {
        let mut out = self.clone();
        for (tc, ab) in other.iter() {
            let slot = out.get_mut(tc);
            *slot = slot.merge(ab);
        }
        out
    }

    /// Total encoded size of all entries.
    pub fn encoded_size(&self) -> usize {
        4 + self
            .entries
            .iter()
            .map(|(_, a)| 2 + a.encoded_size())
            .sum::<usize>()
    }

    /// Serialize.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.entries.len() as u32);
        for (tc, ab) in &self.entries {
            enc.u16(tc.0);
            ab.encode(enc);
        }
    }

    /// Deserialize.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Self, CoreError> {
        let n = dec.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            let tc = crate::ids::TcId(dec.u16()?);
            let ab = AbstractLsn::decode(dec)?;
            entries.push((tc, ab));
        }
        Ok(PerTcAbLsn { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TcId;

    #[test]
    fn scalar_behaviour_matches_classic_test() {
        let ab = AbstractLsn::from_scalar(Lsn(10));
        assert!(ab.includes(Lsn(1)));
        assert!(ab.includes(Lsn(10)));
        assert!(!ab.includes(Lsn(11)));
    }

    #[test]
    fn out_of_order_inclusion() {
        // The paper's motivating case: Oj (LSN 12) executes before Oi
        // (LSN 11). A scalar page LSN of 12 would wrongly claim Oi done.
        let mut ab = AbstractLsn::new();
        ab.record(Lsn(12));
        assert!(ab.includes(Lsn(12)));
        assert!(
            !ab.includes(Lsn(11)),
            "abLSN must not claim the skipped LSN"
        );
        ab.record(Lsn(11));
        assert!(ab.includes(Lsn(11)));
    }

    #[test]
    fn record_is_idempotent() {
        let mut ab = AbstractLsn::new();
        ab.record(Lsn(5));
        ab.record(Lsn(5));
        assert_eq!(ab.in_set_len(), 1);
    }

    #[test]
    fn advance_lw_prunes() {
        let mut ab = AbstractLsn::new();
        for l in [3u64, 5, 8, 13] {
            ab.record(Lsn(l));
        }
        ab.advance_lw(Lsn(8));
        assert_eq!(ab.lw(), Lsn(8));
        assert_eq!(ab.ins(), &[Lsn(13)]);
        assert!(ab.includes(Lsn(5)));
        assert!(ab.includes(Lsn(13)));
        assert!(!ab.includes(Lsn(9)));
        // LWM never regresses.
        ab.advance_lw(Lsn(2));
        assert_eq!(ab.lw(), Lsn(8));
    }

    #[test]
    fn as_scalar_only_when_caught_up() {
        let mut ab = AbstractLsn::new();
        ab.record(Lsn(4));
        assert_eq!(ab.as_scalar(), None);
        ab.advance_lw(Lsn(4));
        assert_eq!(ab.as_scalar(), Some(Lsn(4)));
    }

    #[test]
    fn merge_union_semantics() {
        let mut a = AbstractLsn::from_scalar(Lsn(5));
        a.record(Lsn(9));
        a.record(Lsn(11));
        let mut b = AbstractLsn::from_scalar(Lsn(7));
        b.record(Lsn(9));
        b.record(Lsn(14));
        let m = a.merge(&b);
        assert_eq!(m.lw(), Lsn(7));
        assert_eq!(m.ins(), &[Lsn(9), Lsn(11), Lsn(14)]);
        // lower lw's implicit inclusions are covered by max(lw).
        assert!(m.includes(Lsn(6)));
    }

    #[test]
    fn max_included() {
        let mut ab = AbstractLsn::from_scalar(Lsn(3));
        assert_eq!(ab.max_included(), Lsn(3));
        ab.record(Lsn(10));
        assert_eq!(ab.max_included(), Lsn(10));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut ab = AbstractLsn::from_scalar(Lsn(42));
        ab.record(Lsn(50));
        ab.record(Lsn(44));
        let mut enc = Encoder::new();
        ab.encode(&mut enc);
        let bytes = enc.finish();
        assert_eq!(bytes.len(), ab.encoded_size());
        let mut dec = Decoder::new(&bytes);
        let back = AbstractLsn::decode(&mut dec).unwrap();
        assert_eq!(back, ab);
    }

    #[test]
    fn per_tc_separate_spaces() {
        let mut p = PerTcAbLsn::new();
        p.get_mut(TcId(1)).record(Lsn(9));
        p.get_mut(TcId(2)).record(Lsn(9));
        p.get_mut(TcId(1)).advance_lw(Lsn(9));
        assert_eq!(p.get(TcId(1)).unwrap().as_scalar(), Some(Lsn(9)));
        assert_eq!(p.get(TcId(2)).unwrap().as_scalar(), None);
        assert_eq!(p.len(), 2);
        p.remove(TcId(1));
        assert!(p.get(TcId(1)).is_none());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn per_tc_encode_roundtrip() {
        let mut p = PerTcAbLsn::new();
        p.get_mut(TcId(3)).record(Lsn(100));
        p.get_mut(TcId(1)).advance_lw(Lsn(7));
        let mut enc = Encoder::new();
        p.encode(&mut enc);
        let bytes = enc.finish();
        assert_eq!(bytes.len(), p.encoded_size());
        let back = PerTcAbLsn::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back, p);
    }
}
