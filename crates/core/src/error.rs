//! Error types shared across the unbundled kernel.

use crate::ids::{DcId, TableId, TcId, TxnId};
use crate::key::Key;
use std::fmt;

/// Errors from the contract layer itself (codec, invariant violations).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// Malformed binary image.
    Codec {
        /// What went wrong.
        what: &'static str,
        /// Byte offset of the failure.
        at: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Codec { what, at } => write!(f, "codec error at byte {at}: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Errors a DC can return for a logical operation. These surface in the
/// `perform_operation` reply; the TC maps them to transaction outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DcError {
    /// The named table does not exist at this DC.
    NoSuchTable(TableId),
    /// Insert of a key that already exists.
    DuplicateKey(TableId, Key),
    /// Update/delete of a key that does not exist.
    KeyNotFound(TableId, Key),
    /// A versioned-table operation was sent to an unversioned table or
    /// vice versa.
    VersioningMismatch(TableId),
    /// The DC is restarting and cannot serve normal requests yet.
    Restarting,
    /// The DC refuses mutations: it is a read-only replica, or an old
    /// primary fenced off after a failover promotion. Reads still work.
    Fenced(DcId),
    /// Corrupt stable state encountered.
    Corrupt(String),
}

impl fmt::Display for DcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcError::NoSuchTable(t) => write!(f, "no such table {t}"),
            DcError::DuplicateKey(t, k) => write!(f, "duplicate key {k} in {t}"),
            DcError::KeyNotFound(t, k) => write!(f, "key {k} not found in {t}"),
            DcError::VersioningMismatch(t) => write!(f, "versioning mismatch on {t}"),
            DcError::Restarting => write!(f, "data component is restarting"),
            DcError::Fenced(d) => write!(f, "{d} is fenced: not the writable primary"),
            DcError::Corrupt(s) => write!(f, "corrupt state: {s}"),
        }
    }
}

impl std::error::Error for DcError {}

/// Errors surfaced to applications by the TC.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcError {
    /// The transaction was chosen as a deadlock victim and rolled back.
    Deadlock(TxnId),
    /// The transaction was already committed/aborted.
    NotActive(TxnId),
    /// A DC rejected an operation; the transaction has been rolled back.
    OperationFailed(TxnId, DcError),
    /// A request to an unknown DC.
    NoSuchDc(DcId),
    /// The TC is not accepting work (crashed or restarting).
    Unavailable(TcId),
    /// A DC stopped responding to (re)sends.
    DcUnreachable(DcId),
    /// Lock acquisition timed out (distinct from detected deadlock).
    LockTimeout(TxnId),
    /// A cross-TC participant refused to prepare (or failed an op); the
    /// whole distributed transaction has been rolled back.
    PrepareRefused(TxnId),
    /// A key is owned by a TC shard this TC has no peer handle for.
    NoSuchTc(TcId),
    /// A forwarded operation carried a shard-map epoch that does not
    /// match the receiver's (`tc` rejected at `epoch`), or addressed a
    /// range the receiver no longer owns. The sender must refresh its
    /// map and re-route; the op was **not** executed.
    StaleShardMap {
        /// The rejecting TC.
        tc: TcId,
        /// The shard-map epoch installed at the rejecting TC.
        epoch: u64,
    },
}

impl fmt::Display for TcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TcError::Deadlock(x) => write!(f, "{x} aborted: deadlock victim"),
            TcError::NotActive(x) => write!(f, "{x} is not active"),
            TcError::OperationFailed(x, e) => write!(f, "{x} aborted: {e}"),
            TcError::NoSuchDc(d) => write!(f, "unknown data component {d}"),
            TcError::Unavailable(t) => write!(f, "{t} unavailable"),
            TcError::DcUnreachable(d) => write!(f, "{d} unreachable"),
            TcError::LockTimeout(x) => write!(f, "{x} aborted: lock timeout"),
            TcError::PrepareRefused(x) => write!(f, "{x} aborted: cross-TC prepare refused"),
            TcError::NoSuchTc(t) => write!(f, "unknown transaction component {t}"),
            TcError::StaleShardMap { tc, epoch } => {
                write!(
                    f,
                    "{tc} rejected forward: stale shard map (its epoch {epoch})"
                )
            }
        }
    }
}

impl std::error::Error for TcError {}

/// Why a proposed shard split is invalid. Surfaced as a value (not a
/// panic) so both the manual `split_shard` path and the automatic
/// rebalance policy can *reject* a bad cut — an empty or single-point
/// shard has no observable interior median, and splitting "at" one of
/// its bounds would move nothing while still burning a fence + drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitError {
    /// The cut point is not interior to the partition containing it: a
    /// cut exactly on the partition's lower bound (the empty-shard /
    /// no-observable-median case collapses to this) would move the
    /// whole partition, and the bound itself moves nothing.
    NotInterior {
        /// The rejected cut point.
        at: u64,
        /// Lower bound (inclusive) of the partition containing `at`.
        lo: u64,
    },
    /// The proposed target already owns the partition containing the
    /// cut: the "split" would change no ownership.
    SameOwner {
        /// The rejected cut point.
        at: u64,
        /// The TC that already owns the partition.
        owner: TcId,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NotInterior { at, lo } => write!(
                f,
                "split at {at:#x} rejected: not interior to its partition (lower bound {lo:#x})"
            ),
            SplitError::SameOwner { at, owner } => write!(
                f,
                "split at {at:#x} rejected: {owner} already owns the partition"
            ),
        }
    }
}

impl std::error::Error for SplitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DcError::DuplicateKey(TableId(1), Key::from_u64(9));
        assert!(e.to_string().contains("duplicate key"));
        let t = TcError::OperationFailed(TxnId(4), e);
        assert!(t.to_string().contains("X4"));
        let c = CoreError::Codec { what: "x", at: 3 };
        assert!(c.to_string().contains("byte 3"));
    }
}
