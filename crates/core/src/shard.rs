//! Key-range → owner resolution, shared by DC routing and the TC shard
//! map.
//!
//! Both the DC-side `TableRoute::Partitioned` routing and the TC shard
//! map introduced for cross-TC transactions partition the `u64` key
//! prefix space into contiguous ranges described as a sorted vector of
//! `(exclusive_upper_bound, owner)` entries whose last entry must have
//! the bound `u64::MAX`. The resolution rules — point lookup, range
//! overlap, and the harmless last-partition fallback for degenerate
//! ranges — used to be duplicated; they live here now so both consumers
//! share one tested implementation.

use std::sync::Arc;

use crate::ids::TcId;
use crate::key::Key;

/// The owner of point `p` in a sorted `(upper, owner)` partition table.
/// Entry `(upper, owner)` covers points `< upper`; the last entry (bound
/// `u64::MAX`) additionally absorbs `u64::MAX` itself so the table is
/// total.
///
/// Panics on an empty table (partition tables are non-empty by
/// construction).
pub fn range_owner<T: Copy>(parts: &[(u64, T)], p: u64) -> T {
    for (upper, owner) in parts {
        if p < *upper {
            return *owner;
        }
    }
    parts.last().expect("non-empty partition table").1
}

/// Owners whose ranges intersect `[lo, hi]` (both bounds inclusive — an
/// exclusive high bound should be passed as `hi` directly because the
/// walk compares `hi >= lower`, which keeps the partition containing the
/// bound, matching scan semantics where the edge partition must be
/// consulted). Owners are returned in key order, deduplicated only in
/// the sense that each partition appears once.
///
/// A degenerate range (`hi < lo`, i.e. inverted bounds) selects no
/// partition; callers still need *some* owner to address (they will read
/// zero rows from it), so the walk falls back to the last partition
/// rather than returning an empty set or panicking.
pub fn range_owners<T: Copy>(parts: &[(u64, T)], lo: u64, hi: u64) -> Vec<T> {
    let mut out = Vec::new();
    let mut lower = 0u64;
    for (upper, owner) in parts {
        // partition covers [lower, upper)
        if lo < *upper && hi >= lower {
            out.push(*owner);
        }
        lower = *upper;
    }
    if out.is_empty() {
        out.push(parts.last().expect("non-empty partition table").1);
    }
    out
}

/// Key-range → TC ownership for a sharded transaction service.
///
/// Every TC in a sharded deployment holds the same map. An operation on
/// a key owned by another shard is forwarded to that shard's TC, which
/// runs it as a *participant* branch of the originating transaction;
/// commit then goes through two-phase commit over the TCs' redo logs.
/// Locking stays safe because the map partitions the key space: only the
/// owning TC ever locks a key.
#[derive(Clone)]
pub struct TcShardMap {
    parts: Arc<Vec<(u64, TcId)>>,
}

impl TcShardMap {
    /// Build from sorted `(exclusive_upper, tc)` entries; the last bound
    /// must be `u64::MAX`.
    pub fn new(parts: Vec<(u64, TcId)>) -> Self {
        assert!(!parts.is_empty(), "shard map must have at least one range");
        assert_eq!(
            parts.last().unwrap().0,
            u64::MAX,
            "last shard bound must be u64::MAX"
        );
        debug_assert!(parts.windows(2).all(|w| w[0].0 < w[1].0));
        TcShardMap {
            parts: Arc::new(parts),
        }
    }

    /// A one-shard map: the degenerate case where `tc` owns everything.
    pub fn single(tc: TcId) -> Self {
        TcShardMap::new(vec![(u64::MAX, tc)])
    }

    /// Evenly split the `u64` prefix space across `tcs` (in order).
    pub fn even(tcs: &[TcId]) -> Self {
        assert!(!tcs.is_empty());
        let n = tcs.len() as u64;
        let step = u64::MAX / n;
        let parts = tcs
            .iter()
            .enumerate()
            .map(|(i, tc)| {
                let upper = if i as u64 == n - 1 {
                    u64::MAX
                } else {
                    (i as u64 + 1) * step
                };
                (upper, *tc)
            })
            .collect();
        TcShardMap::new(parts)
    }

    /// The TC owning `key`.
    pub fn tc_for(&self, key: &Key) -> TcId {
        range_owner(&self.parts, key.u64_prefix().unwrap_or(0))
    }

    /// All shard owners, in key order.
    pub fn shards(&self) -> Vec<TcId> {
        self.parts.iter().map(|(_, tc)| *tc).collect()
    }

    /// Number of ranges in the map.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the map has a single range (no cross-TC forwarding).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw partition table.
    pub fn parts(&self) -> &[(u64, TcId)] {
        &self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_resolution_adjacent_ranges() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        assert_eq!(range_owner(&parts, 0), 'a');
        assert_eq!(range_owner(&parts, 9), 'a');
        // Boundary points belong to the range above: bounds are
        // exclusive uppers.
        assert_eq!(range_owner(&parts, 10), 'b');
        assert_eq!(range_owner(&parts, 19), 'b');
        assert_eq!(range_owner(&parts, 20), 'c');
    }

    #[test]
    fn point_resolution_u64_max_bound() {
        let parts = vec![(u64::MAX, 'z')];
        // u64::MAX itself is below no exclusive bound; the last
        // partition absorbs it.
        assert_eq!(range_owner(&parts, u64::MAX), 'z');
        let parts = vec![(100u64, 'a'), (u64::MAX, 'b')];
        assert_eq!(range_owner(&parts, u64::MAX), 'b');
        assert_eq!(range_owner(&parts, u64::MAX - 1), 'b');
    }

    #[test]
    fn range_owners_singleton_range() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        // [5, 5] is a single point inside the first partition.
        assert_eq!(range_owners(&parts, 5, 5), vec!['a']);
        // A singleton exactly on a bound lives in the upper partition.
        assert_eq!(range_owners(&parts, 10, 10), vec!['b']);
    }

    #[test]
    fn range_owners_adjacent_and_spanning() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        assert_eq!(range_owners(&parts, 0, 9), vec!['a']);
        assert_eq!(range_owners(&parts, 5, 15), vec!['a', 'b']);
        assert_eq!(range_owners(&parts, 0, u64::MAX), vec!['a', 'b', 'c']);
        // Touching the bound from below does not spill into the next
        // partition's exclusive region... but hi is compared inclusively
        // against the partition's lower edge, so [5, 10] consults 'b'
        // (the partition containing point 10).
        assert_eq!(range_owners(&parts, 5, 10), vec!['a', 'b']);
    }

    #[test]
    fn range_owners_inverted_bounds_fall_back() {
        let parts = vec![(10u64, 'a'), (u64::MAX, 'b')];
        // hi < lo selects nothing; callers get the last partition as a
        // harmless addressee.
        assert_eq!(range_owners(&parts, 500, 50), vec!['b']);
    }

    #[test]
    fn shard_map_even_split_and_lookup() {
        let tcs = [TcId(1), TcId(2), TcId(3), TcId(4)];
        let m = TcShardMap::even(&tcs);
        assert_eq!(m.len(), 4);
        assert_eq!(m.shards(), tcs.to_vec());
        assert_eq!(m.tc_for(&Key::from_u64(0)), TcId(1));
        assert_eq!(m.tc_for(&Key::from_u64(u64::MAX)), TcId(4));
        let step = u64::MAX / 4;
        assert_eq!(m.tc_for(&Key::from_u64(step - 1)), TcId(1));
        assert_eq!(m.tc_for(&Key::from_u64(step)), TcId(2));
    }

    #[test]
    fn shard_map_single() {
        let m = TcShardMap::single(TcId(7));
        assert_eq!(m.tc_for(&Key::from_u64(0)), TcId(7));
        assert_eq!(m.tc_for(&Key::from_u64(u64::MAX)), TcId(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "last shard bound")]
    fn shard_map_rejects_partial_coverage() {
        TcShardMap::new(vec![(100, TcId(1))]);
    }
}
