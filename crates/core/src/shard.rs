//! Key-range → owner resolution, shared by DC routing and the TC shard
//! map.
//!
//! Both the DC-side `TableRoute::Partitioned` routing and the TC shard
//! map introduced for cross-TC transactions partition the `u64` key
//! prefix space into contiguous ranges described as a sorted vector of
//! `(exclusive_upper_bound, owner)` entries whose last entry must have
//! the bound `u64::MAX`. The resolution rules — point lookup, range
//! overlap, and the harmless last-partition fallback for degenerate
//! ranges — used to be duplicated; they live here now so both consumers
//! share one tested implementation.
//!
//! Point placement for keys without an 8-byte numeric prefix uses a
//! stable FNV-1a hash of the key bytes ([`route_point`]), so short and
//! non-numeric keys spread across partitions instead of piling onto the
//! first one, and DC routing and TC sharding agree on where such a key
//! lives because both call the same helper.

use std::sync::Arc;

use crate::error::SplitError;
use crate::ids::TcId;
use crate::key::Key;

/// The `u64` point a key resolves to in a partition table.
///
/// Keys with an 8-byte big-endian numeric prefix route by that prefix,
/// preserving range-partitioned locality for the common numeric keys.
/// Keys too short to carry a prefix route by a stable FNV-1a hash of
/// their bytes: they have no meaningful position in the numeric order,
/// so hashing spreads them across partitions instead of mapping them
/// all to point 0 (which both overloaded partition 0 and — had the DC
/// and TC fallbacks ever diverged — risked the two layers disagreeing
/// about a key's owner). Both `TcShardMap::tc_for` and the DC-side
/// `TableRoute::dc_for` must call this one helper.
pub fn route_point(key: &Key) -> u64 {
    match key.u64_prefix() {
        Some(p) => p,
        None => fnv1a(key.as_bytes()),
    }
}

/// FNV-1a over `bytes` (64-bit offset basis / prime). Stable across
/// platforms and releases: partition placement of hashed keys is
/// durable state, so this must never change.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The owner of point `p` in a sorted `(upper, owner)` partition table.
/// Entry `(upper, owner)` covers points `< upper`; the last entry (bound
/// `u64::MAX`) additionally absorbs `u64::MAX` itself so the table is
/// total.
///
/// Panics on an empty table (partition tables are non-empty by
/// construction).
pub fn range_owner<T: Copy>(parts: &[(u64, T)], p: u64) -> T {
    for (upper, owner) in parts {
        if p < *upper {
            return *owner;
        }
    }
    parts.last().expect("non-empty partition table").1
}

/// Owners whose ranges intersect `[lo, hi]` (both bounds inclusive — an
/// exclusive high bound should be passed as `hi` directly because the
/// walk compares `hi >= lower`, which keeps the partition containing the
/// bound, matching scan semantics where the edge partition must be
/// consulted). Owners are returned in key order, deduplicated only in
/// the sense that each partition appears once.
///
/// A degenerate range (`hi < lo`, i.e. inverted bounds) selects no
/// partition; callers still need *some* owner to address (they will read
/// zero rows from it), so the walk falls back to the last partition
/// rather than returning an empty set or panicking.
pub fn range_owners<T: Copy>(parts: &[(u64, T)], lo: u64, hi: u64) -> Vec<T> {
    let mut out = Vec::new();
    let mut lower = 0u64;
    for (upper, owner) in parts {
        // partition covers [lower, upper)
        if lo < *upper && hi >= lower {
            out.push(*owner);
        }
        lower = *upper;
    }
    if out.is_empty() {
        out.push(parts.last().expect("non-empty partition table").1);
    }
    out
}

/// Key-range → TC ownership for a sharded transaction service.
///
/// Every TC in a sharded deployment holds the same map. An operation on
/// a key owned by another shard is forwarded to that shard's TC, which
/// runs it as a *participant* branch of the originating transaction;
/// commit then goes through two-phase commit over the TCs' redo logs.
/// Locking stays safe because the map partitions the key space: only the
/// owning TC ever locks a key.
///
/// Maps are *epoch-versioned*: every online split/merge publishes a new
/// map with `epoch + 1`. Forwarded operations carry the sender's epoch
/// and a receiver rejects mismatched forwards instead of executing them,
/// so a stale sender re-routes rather than mutating a range that has
/// moved out from under it.
#[derive(Clone)]
pub struct TcShardMap {
    parts: Arc<Vec<(u64, TcId)>>,
    epoch: u64,
}

impl TcShardMap {
    /// Build from sorted `(exclusive_upper, tc)` entries; the last bound
    /// must be `u64::MAX`. Epoch 0.
    pub fn new(parts: Vec<(u64, TcId)>) -> Self {
        TcShardMap::with_epoch(parts, 0)
    }

    /// Build with an explicit epoch (rebalance republish and recovery).
    ///
    /// Bounds must be strictly increasing: a duplicate or unsorted bound
    /// is a hard error in release builds too — a malformed map would
    /// silently misroute keys, which an online map change turns from a
    /// latent bug into live cross-shard locking corruption.
    pub fn with_epoch(parts: Vec<(u64, TcId)>, epoch: u64) -> Self {
        assert!(!parts.is_empty(), "shard map must have at least one range");
        assert_eq!(
            parts.last().unwrap().0,
            u64::MAX,
            "last shard bound must be u64::MAX"
        );
        assert!(
            parts.windows(2).all(|w| w[0].0 < w[1].0),
            "shard bounds must be strictly increasing"
        );
        TcShardMap {
            parts: Arc::new(parts),
            epoch,
        }
    }

    /// A one-shard map: the degenerate case where `tc` owns everything.
    pub fn single(tc: TcId) -> Self {
        TcShardMap::new(vec![(u64::MAX, tc)])
    }

    /// Evenly split the `u64` prefix space across `tcs` (in order).
    pub fn even(tcs: &[TcId]) -> Self {
        assert!(!tcs.is_empty());
        let n = tcs.len() as u64;
        let step = u64::MAX / n;
        let parts = tcs
            .iter()
            .enumerate()
            .map(|(i, tc)| {
                let upper = if i as u64 == n - 1 {
                    u64::MAX
                } else {
                    (i as u64 + 1) * step
                };
                (upper, *tc)
            })
            .collect();
        TcShardMap::new(parts)
    }

    /// The map's epoch; bumped by every published split/merge.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The TC owning `key`.
    pub fn tc_for(&self, key: &Key) -> TcId {
        range_owner(&self.parts, route_point(key))
    }

    /// The partition containing point `p`, as `(lo, hi, owner)` with
    /// both bounds inclusive.
    pub fn range_containing(&self, p: u64) -> (u64, u64, TcId) {
        let mut lower = 0u64;
        for (upper, owner) in self.parts.iter() {
            if p < *upper {
                let hi = if *upper == u64::MAX {
                    u64::MAX
                } else {
                    *upper - 1
                };
                return (lower, hi, *owner);
            }
            lower = *upper;
        }
        let last = self.parts.last().expect("non-empty shard map");
        // Only p == u64::MAX reaches here; the last partition absorbs it.
        (
            if self.parts.len() == 1 {
                0
            } else {
                self.parts[self.parts.len() - 2].0
            },
            u64::MAX,
            last.1,
        )
    }

    /// The next map after a split: the partition containing `at` is cut
    /// at `at` and its upper piece `[at, old_upper]` is handed to `to`.
    /// Returns the new map (epoch + 1).
    ///
    /// A split that would move nothing is rejected as a value, not a
    /// panic: `at` must be interior to its partition (a cut exactly on
    /// an existing bound — the shape an empty or single-point shard
    /// forces — is [`SplitError::NotInterior`]) and `to` must differ
    /// from the current owner ([`SplitError::SameOwner`]). Callers like
    /// the rebalance policy probe speculative cuts; they need a typed
    /// refusal, not a crashed controller.
    pub fn split(&self, at: u64, to: TcId) -> Result<TcShardMap, SplitError> {
        let (lo, hi, from) = self.range_containing(at);
        if at <= lo {
            return Err(SplitError::NotInterior { at, lo });
        }
        debug_assert!(at <= hi);
        if from == to {
            return Err(SplitError::SameOwner { at, owner: from });
        }
        Ok(self.with_range_owner(at, hi, to, self.epoch + 1))
    }

    /// The next map after a merge at `bound`: the partition starting at
    /// `bound` is absorbed into the partition below it, so the range
    /// `[bound, upper_of_absorbed]` moves to the lower partition's
    /// owner. `bound` must be an interior bound of the map. Returns the
    /// new map (epoch + 1).
    pub fn merge_at(&self, bound: u64) -> TcShardMap {
        let idx = self
            .parts
            .iter()
            .position(|(upper, _)| *upper == bound)
            .expect("merge bound must be an interior shard bound");
        assert!(idx + 1 < self.parts.len(), "cannot merge past u64::MAX");
        let survivor = self.parts[idx].1;
        let absorbed_hi = self.parts[idx + 1].0;
        let hi = if absorbed_hi == u64::MAX {
            u64::MAX
        } else {
            absorbed_hi - 1
        };
        self.with_range_owner(bound, hi, survivor, self.epoch + 1)
    }

    /// A copy of the map in which `[lo, hi]` (inclusive) is owned by
    /// `to`, with adjacent same-owner partitions coalesced, at `epoch`.
    /// This is the general reassignment both `split` and `merge_at`
    /// reduce to, and what recovery uses to rebuild a post-move map from
    /// a durable `RebalanceDone` record.
    pub fn with_range_owner(&self, lo: u64, hi: u64, to: TcId, epoch: u64) -> TcShardMap {
        assert!(lo <= hi);
        // Expand to (lower, upper_exclusive-as-option, owner) triples,
        // overwrite the moving range, then re-derive bounds coalescing
        // equal neighbours. `None` upper means u64::MAX inclusive.
        let mut pieces: Vec<(u64, Option<u64>, TcId)> = Vec::new();
        let mut lower = 0u64;
        for (upper, owner) in self.parts.iter() {
            let up = if *upper == u64::MAX {
                None
            } else {
                Some(*upper)
            };
            pieces.push((lower, up, *owner));
            lower = *upper;
        }
        let mut out: Vec<(u64, Option<u64>, TcId)> = Vec::new();
        for (plo, pup, owner) in pieces {
            let phi = pup.map_or(u64::MAX, |u| u - 1);
            if phi < lo || plo > hi {
                out.push((plo, pup, owner));
                continue;
            }
            if plo < lo {
                out.push((plo, Some(lo), owner));
            }
            out.push((plo.max(lo), if phi <= hi { pup } else { Some(hi + 1) }, to));
            if phi > hi {
                out.push((hi + 1, pup, owner));
            }
        }
        let mut parts: Vec<(u64, TcId)> = Vec::new();
        for (_, pup, owner) in out {
            let upper = pup.unwrap_or(u64::MAX);
            match parts.last_mut() {
                Some(last) if last.1 == owner => last.0 = upper,
                _ => parts.push((upper, owner)),
            }
        }
        TcShardMap::with_epoch(parts, epoch)
    }

    /// All shard owners, in key order.
    pub fn shards(&self) -> Vec<TcId> {
        self.parts.iter().map(|(_, tc)| *tc).collect()
    }

    /// Number of ranges in the map.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the map covers the space with a single range, i.e. no
    /// cross-TC forwarding can ever happen under it.
    pub fn is_single(&self) -> bool {
        self.parts.len() == 1
    }

    /// Always `false`: a shard map covers the whole key space by
    /// construction, so it is never empty. Exists only to pair with
    /// `len()`; the predicate callers actually want is [`is_single`].
    ///
    /// [`is_single`]: TcShardMap::is_single
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The raw partition table.
    pub fn parts(&self) -> &[(u64, TcId)] {
        &self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_resolution_adjacent_ranges() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        assert_eq!(range_owner(&parts, 0), 'a');
        assert_eq!(range_owner(&parts, 9), 'a');
        // Boundary points belong to the range above: bounds are
        // exclusive uppers.
        assert_eq!(range_owner(&parts, 10), 'b');
        assert_eq!(range_owner(&parts, 19), 'b');
        assert_eq!(range_owner(&parts, 20), 'c');
    }

    #[test]
    fn point_resolution_u64_max_bound() {
        let parts = vec![(u64::MAX, 'z')];
        // u64::MAX itself is below no exclusive bound; the last
        // partition absorbs it.
        assert_eq!(range_owner(&parts, u64::MAX), 'z');
        let parts = vec![(100u64, 'a'), (u64::MAX, 'b')];
        assert_eq!(range_owner(&parts, u64::MAX), 'b');
        assert_eq!(range_owner(&parts, u64::MAX - 1), 'b');
    }

    #[test]
    fn range_owners_singleton_range() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        // [5, 5] is a single point inside the first partition.
        assert_eq!(range_owners(&parts, 5, 5), vec!['a']);
        // A singleton exactly on a bound lives in the upper partition.
        assert_eq!(range_owners(&parts, 10, 10), vec!['b']);
    }

    #[test]
    fn range_owners_adjacent_and_spanning() {
        let parts = vec![(10u64, 'a'), (20, 'b'), (u64::MAX, 'c')];
        assert_eq!(range_owners(&parts, 0, 9), vec!['a']);
        assert_eq!(range_owners(&parts, 5, 15), vec!['a', 'b']);
        assert_eq!(range_owners(&parts, 0, u64::MAX), vec!['a', 'b', 'c']);
        // Touching the bound from below does not spill into the next
        // partition's exclusive region... but hi is compared inclusively
        // against the partition's lower edge, so [5, 10] consults 'b'
        // (the partition containing point 10).
        assert_eq!(range_owners(&parts, 5, 10), vec!['a', 'b']);
    }

    #[test]
    fn range_owners_inverted_bounds_fall_back() {
        let parts = vec![(10u64, 'a'), (u64::MAX, 'b')];
        // hi < lo selects nothing; callers get the last partition as a
        // harmless addressee.
        assert_eq!(range_owners(&parts, 500, 50), vec!['b']);
    }

    #[test]
    fn shard_map_even_split_and_lookup() {
        let tcs = [TcId(1), TcId(2), TcId(3), TcId(4)];
        let m = TcShardMap::even(&tcs);
        assert_eq!(m.len(), 4);
        assert_eq!(m.shards(), tcs.to_vec());
        assert_eq!(m.tc_for(&Key::from_u64(0)), TcId(1));
        assert_eq!(m.tc_for(&Key::from_u64(u64::MAX)), TcId(4));
        let step = u64::MAX / 4;
        assert_eq!(m.tc_for(&Key::from_u64(step - 1)), TcId(1));
        assert_eq!(m.tc_for(&Key::from_u64(step)), TcId(2));
    }

    #[test]
    fn shard_map_single() {
        let m = TcShardMap::single(TcId(7));
        assert_eq!(m.tc_for(&Key::from_u64(0)), TcId(7));
        assert_eq!(m.tc_for(&Key::from_u64(u64::MAX)), TcId(7));
        assert_eq!(m.len(), 1);
        assert!(m.is_single());
        assert!(!TcShardMap::even(&[TcId(1), TcId(2)]).is_single());
    }

    #[test]
    #[should_panic(expected = "last shard bound")]
    fn shard_map_rejects_partial_coverage() {
        TcShardMap::new(vec![(100, TcId(1))]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn shard_map_rejects_unsorted_bounds() {
        // This must panic in release builds too: it used to be only a
        // debug_assert!, which let a malformed map misroute silently.
        TcShardMap::new(vec![(200, TcId(1)), (100, TcId(2)), (u64::MAX, TcId(3))]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn shard_map_rejects_duplicate_bounds() {
        TcShardMap::new(vec![(100, TcId(1)), (100, TcId(2)), (u64::MAX, TcId(3))]);
    }

    #[test]
    fn non_numeric_keys_spread_across_shards() {
        let m = TcShardMap::even(&[TcId(1), TcId(2), TcId(3), TcId(4)]);
        let keys: Vec<Key> = ["a", "bb", "ccc", "dd", "e", "fff", "g"]
            .iter()
            .map(|s| Key::from_str_key(s))
            .collect();
        let mut owners: Vec<TcId> = keys.iter().map(|k| m.tc_for(k)).collect();
        owners.sort();
        owners.dedup();
        // Hashed placement must not pile every short key onto shard 1
        // (the old `u64_prefix().unwrap_or(0)` fallback did exactly
        // that).
        assert!(
            owners.len() > 1,
            "short keys should spread across shards, all landed on {owners:?}"
        );
        // And placement is stable: same key, same point, every time.
        for k in &keys {
            assert_eq!(route_point(k), route_point(k));
        }
    }

    #[test]
    fn split_cuts_one_partition_and_bumps_epoch() {
        let m = TcShardMap::even(&[TcId(1), TcId(2)]);
        let half = u64::MAX / 2;
        let quarter = half / 2;
        let s = m.split(quarter, TcId(3)).expect("interior cut");
        assert_eq!(s.epoch(), 1);
        assert_eq!(
            s.parts(),
            &[(quarter, TcId(1)), (half, TcId(3)), (u64::MAX, TcId(2))]
        );
        // The moving range is exactly [quarter, half - 1].
        assert_eq!(s.range_containing(quarter), (quarter, half - 1, TcId(3)));
        // Points outside the moving range keep their owner.
        assert_eq!(s.tc_for(&Key::from_u64(0)), TcId(1));
        assert_eq!(s.tc_for(&Key::from_u64(half)), TcId(2));
    }

    #[test]
    fn split_rejects_non_interior_cut_and_same_owner() {
        let m = TcShardMap::even(&[TcId(1), TcId(2)]);
        let half = u64::MAX / 2;
        // A cut exactly on a partition's lower bound moves nothing —
        // the shape an empty shard forces on any proposed cut.
        assert_eq!(
            m.split(0, TcId(3)).err(),
            Some(SplitError::NotInterior { at: 0, lo: 0 })
        );
        assert_eq!(
            m.split(half, TcId(3)).err(),
            Some(SplitError::NotInterior { at: half, lo: half })
        );
        // Handing the upper piece to the owner it already has is not a
        // split either.
        assert_eq!(
            m.split(half / 2, TcId(1)).err(),
            Some(SplitError::SameOwner {
                at: half / 2,
                owner: TcId(1)
            })
        );
        // The rejected map is untouched: epoch 0, two even ranges.
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_absorbs_upper_partition_into_lower() {
        let half = u64::MAX / 2;
        let quarter = half / 2;
        let m = TcShardMap::with_epoch(
            vec![(quarter, TcId(1)), (half, TcId(3)), (u64::MAX, TcId(2))],
            5,
        );
        let g = m.merge_at(quarter);
        assert_eq!(g.epoch(), 6);
        assert_eq!(g.parts(), &[(half, TcId(1)), (u64::MAX, TcId(2))]);
        assert_eq!(g.tc_for(&Key::from_u64(quarter)), TcId(1));
    }

    #[test]
    fn merge_coalesces_same_owner_neighbours() {
        let m =
            TcShardMap::with_epoch(vec![(100, TcId(1)), (200, TcId(2)), (u64::MAX, TcId(1))], 0);
        let g = m.merge_at(100);
        // TC2's range collapses into TC1; the surviving map is a single
        // TC1 range, not three adjacent TC1 entries.
        assert_eq!(g.parts(), &[(u64::MAX, TcId(1))]);
        assert!(g.is_single());
        assert_eq!(g.epoch(), 1);
    }

    #[test]
    fn with_range_owner_rebuilds_interior_move() {
        let m = TcShardMap::even(&[TcId(1), TcId(2)]);
        let half = u64::MAX / 2;
        // Reassign an interior slice of TC2's range to TC1, as recovery
        // would when replaying a RebalanceDone record.
        let r = m.with_range_owner(half + 10, half + 19, TcId(1), 9);
        assert_eq!(r.epoch(), 9);
        assert_eq!(
            r.parts(),
            &[
                (half, TcId(1)),
                (half + 10, TcId(2)),
                (half + 20, TcId(1)),
                (u64::MAX, TcId(2)),
            ]
        );
    }
}
