//! Identifiers shared between the transactional and data components.

use crate::lsn::Lsn;
use std::fmt;

/// Identifies one Transactional Component instance.
///
/// Multiple TCs may share a single DC (paper Section 6); the DC then keeps
/// idempotence state (abstract LSNs) *per TC*, because TCs do not
/// coordinate how they manage their logs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TcId(pub u16);

impl fmt::Display for TcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TC{}", self.0)
    }
}

/// Identifies one Data Component instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct DcId(pub u16);

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC{}", self.0)
    }
}

/// Identifies a page inside one DC.
///
/// Pages are the DC's private business: the TC never sees a `PageId`
/// (paper Section 1.2 — "All knowledge of pages is confined to a DC").
/// The type lives here only because DC-side crates share it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel for "no page".
    pub const NULL: PageId = PageId(0);

    /// True if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a table (an index / storage structure) inside a DC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a user transaction inside one TC.
///
/// The DC never learns transaction ids: `perform_operation` deliberately
/// carries no transactional context (paper Section 4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Identifies a DC-internal *system transaction* (paper Section 5.2):
/// an atomic structure modification such as a page split or consolidation,
/// invisible to the TC and recovered from the DC's own log.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SysTxnId(pub u64);

impl fmt::Display for SysTxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Correlates a request with its eventual reply, and — for state-changing
/// operations — doubles as the *unique, monotonically increasing request
/// identifier* that the DC's idempotence machinery tracks (Section 4.2:
/// "usually an LSN derived from the TC log").
///
/// Reads are not logged by the TC (they need no redo), so they carry a
/// separate per-TC ticket that participates in reply correlation but not
/// in idempotence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RequestId {
    /// A logged, state-changing operation; the id is the TC-log LSN.
    Op(Lsn),
    /// An unlogged read; the id is a per-TC monotonic ticket.
    Read(u64),
}

impl RequestId {
    /// The LSN, if this request is a logged operation.
    #[inline]
    pub fn lsn(self) -> Option<Lsn> {
        match self {
            RequestId::Op(l) => Some(l),
            RequestId::Read(_) => None,
        }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestId::Op(l) => write!(f, "op:{l}"),
            RequestId::Read(t) => write!(f, "rd:{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_null() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(3).is_null());
    }

    #[test]
    fn request_id_lsn_extraction() {
        assert_eq!(RequestId::Op(Lsn(7)).lsn(), Some(Lsn(7)));
        assert_eq!(RequestId::Read(7).lsn(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TcId(1).to_string(), "TC1");
        assert_eq!(DcId(2).to_string(), "DC2");
        assert_eq!(PageId(3).to_string(), "P3");
        assert_eq!(TableId(4).to_string(), "T4");
        assert_eq!(TxnId(5).to_string(), "X5");
        assert_eq!(SysTxnId(6).to_string(), "S6");
        assert_eq!(RequestId::Op(Lsn(8)).to_string(), "op:8");
        assert_eq!(RequestId::Read(9).to_string(), "rd:9");
    }
}
