//! # unbundled-core
//!
//! The contract layer of an *unbundled* database kernel, following
//! D. Lomet, A. Fekete, G. Weikum, M. Zwilling,
//! **"Unbundling Transaction Services in the Cloud"**, CIDR 2009.
//!
//! The paper factors the monolithic transactional storage manager into a
//! **Transactional Component (TC)** — logical locking + logical undo/redo
//! logging, no knowledge of pages — and a **Data Component (DC)** — access
//! methods, cache management and atomic, *idempotent*, record-oriented
//! operations, no knowledge of transactions. The two interact at arm's
//! length through the message API in [`msg`], governed by the interaction
//! contracts of the paper's Section 4.2 (causality, unique request ids,
//! idempotence, resend, recovery ordering, contract termination).
//!
//! This crate holds everything both sides must agree on:
//!
//! * [`lsn`] — TC log sequence numbers ([`Lsn`]), DC log sequence numbers
//!   ([`DLsn`]) and the paper's **abstract page LSN** ([`AbstractLsn`],
//!   Section 5.1.2) with its generalized `<=` test, low-water-mark pruning
//!   and the merge rule used by page consolidation.
//! * [`ids`] — component / page / table / transaction identifiers.
//! * [`key`] — byte-ordered record keys with composite-key helpers.
//! * [`record`] — stored record representation, including the
//!   *before-version* scheme of Section 6.2.2 that enables cross-TC
//!   read-committed sharing without two-phase commit.
//! * [`op`] — the logical (record-oriented) operations a TC may submit and
//!   their results; operation inverses are what the TC logs for undo.
//! * [`msg`] — the TC:DC API of Section 4.2.1: `perform_operation`,
//!   `end_of_stable_log`, `checkpoint`, `low_water_mark`, `restart`, plus
//!   the DC→TC replies and out-of-band prompts.
//! * [`consistency`] — the read-consistency spectrum ([`ReadConsistency`]):
//!   locking reads, MVCC snapshot reads by commit LSN, and bounded-staleness
//!   replica reads, unified behind one surface.
//! * [`codec`] — a small binary codec used for page images and log records.
//! * [`shard`] — key-range partition resolution shared by DC routing and
//!   the TC shard map ([`TcShardMap`]) that drives cross-TC transactions.
//! * [`error`] — shared error types.

#![warn(missing_docs)]

pub mod codec;
pub mod consistency;
pub mod error;
pub mod ids;
pub mod key;
pub mod lsn;
pub mod msg;
pub mod op;
pub mod record;
pub mod shard;

pub use consistency::{ReadConsistency, SnapshotSpec};
pub use error::{CoreError, DcError, SplitError, TcError};
pub use ids::{DcId, PageId, RequestId, SysTxnId, TableId, TcId, TxnId};
pub use key::Key;
pub use lsn::{AbstractLsn, DLsn, Lsn, PerTcAbLsn};
pub use msg::{DataComponentApi, DcToTc, TcToDc};
pub use op::{LogicalOp, OpResult, ReadFlavor};
pub use record::{BeforeVersion, StoredRecord, TableSpec};
pub use shard::{range_owner, range_owners, route_point, TcShardMap};
