//! Byte-ordered record keys.
//!
//! Keys sort lexicographically on their byte representation; the helpers
//! encode integers big-endian so numeric order equals byte order. The
//! composite helpers build the paper's movie-site keys — `Reviews(MId,
//! UId)` and `MyReviews(UId, MId)` (Section 6.3) — whose clustering drives
//! the Figure 2 partitioning.

use std::fmt;

/// A record key: an owned byte string with lexicographic order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Key(pub Vec<u8>);

impl Key {
    /// The empty key: sorts before every other key.
    pub const fn empty() -> Key {
        Key(Vec::new())
    }

    /// Key from raw bytes.
    pub fn from_bytes(b: impl Into<Vec<u8>>) -> Key {
        Key(b.into())
    }

    /// Key encoding one `u64` (big-endian, so numeric order = key order).
    pub fn from_u64(v: u64) -> Key {
        Key(v.to_be_bytes().to_vec())
    }

    /// Composite key of two `u64`s, ordered by the first then the second.
    pub fn from_pair(a: u64, b: u64) -> Key {
        let mut v = Vec::with_capacity(16);
        v.extend_from_slice(&a.to_be_bytes());
        v.extend_from_slice(&b.to_be_bytes());
        Key(v)
    }

    /// Key from a string.
    pub fn from_str_key(s: &str) -> Key {
        Key(s.as_bytes().to_vec())
    }

    /// Decode a key produced by [`Key::from_u64`].
    pub fn as_u64(&self) -> Option<u64> {
        if self.0.len() == 8 {
            Some(u64::from_be_bytes(self.0[..8].try_into().unwrap()))
        } else {
            None
        }
    }

    /// Decode a key produced by [`Key::from_pair`].
    pub fn as_pair(&self) -> Option<(u64, u64)> {
        if self.0.len() == 16 {
            let a = u64::from_be_bytes(self.0[..8].try_into().unwrap());
            let b = u64::from_be_bytes(self.0[8..].try_into().unwrap());
            Some((a, b))
        } else {
            None
        }
    }

    /// First 8 bytes as a u64 prefix (partitioning helper).
    pub fn u64_prefix(&self) -> Option<u64> {
        if self.0.len() >= 8 {
            Some(u64::from_be_bytes(self.0[..8].try_into().unwrap()))
        } else {
            None
        }
    }

    /// Underlying bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The immediate successor key in lexicographic order (`k` + `0x00`):
    /// the smallest key strictly greater than `k`. Used to build
    /// half-open scan bounds.
    pub fn successor(&self) -> Key {
        let mut v = self.0.clone();
        v.push(0);
        Key(v)
    }

    /// Smallest key with this prefix's *next* prefix, i.e. the exclusive
    /// upper bound of the set of keys starting with `self`. `None` if the
    /// prefix is all-0xFF (unbounded).
    pub fn prefix_upper_bound(&self) -> Option<Key> {
        let mut v = self.0.clone();
        while let Some(&last) = v.last() {
            if last == 0xFF {
                v.pop();
            } else {
                *v.last_mut().unwrap() += 1;
                return Some(Key(v));
            }
        }
        None
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((a, b)) = self.as_pair() {
            return write!(f, "({a},{b})");
        }
        if let Some(v) = self.as_u64() {
            return write!(f, "{v}");
        }
        if let Ok(s) = std::str::from_utf8(&self.0) {
            if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') {
                return write!(f, "{s:?}");
            }
        }
        write!(f, "0x")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Key {
        Key::from_u64(v)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::from_str_key(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_order_preserved() {
        assert!(Key::from_u64(2) < Key::from_u64(10));
        assert!(Key::from_u64(255) < Key::from_u64(256));
        assert_eq!(Key::from_u64(7).as_u64(), Some(7));
    }

    #[test]
    fn pair_order_is_lexicographic() {
        assert!(Key::from_pair(1, 99) < Key::from_pair(2, 0));
        assert!(Key::from_pair(1, 1) < Key::from_pair(1, 2));
        assert_eq!(Key::from_pair(3, 4).as_pair(), Some((3, 4)));
    }

    #[test]
    fn successor_is_tight() {
        let k = Key::from_u64(5);
        let s = k.successor();
        assert!(k < s);
        assert!(s < Key::from_u64(6));
    }

    #[test]
    fn prefix_upper_bound_covers_prefix() {
        let p = Key::from_bytes(vec![1, 2]);
        let ub = p.prefix_upper_bound().unwrap();
        assert!(Key::from_bytes(vec![1, 2, 0xFF, 0xFF]) < ub);
        assert!(Key::from_bytes(vec![1, 3]) >= ub);
        assert_eq!(Key::from_bytes(vec![0xFF]).prefix_upper_bound(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Key::from_u64(9).to_string(), "9");
        assert_eq!(Key::from_pair(1, 2).to_string(), "(1,2)");
        assert_eq!(Key::from_str_key("abc").to_string(), "\"abc\"");
    }

    #[test]
    fn empty_sorts_first() {
        assert!(Key::empty() < Key::from_bytes(vec![0]));
        assert!(Key::empty().is_empty());
    }
}
