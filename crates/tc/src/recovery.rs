//! TC restart and DC-crash recovery (paper Sections 4.2.1 `restart` and
//! 5.3.2).
//!
//! **TC restart** (after the TC lost its volatile state, including the
//! unforced log tail): tell every DC to discard effects of operations
//! beyond the stable log end (causality guarantees they are cache-only),
//! then repeat history logically — resend every logged operation from the
//! redo scan start point in LSN order (idempotence makes this
//! exactly-once) — and finally roll back loser transactions with inverse
//! operations taken from the logged undo information.
//!
//! **DC-crash recovery** (the DC rebooted from its stable state; the TC
//! is healthy): after the DC's own restart has made its structures
//! well-formed, the TC resends operations from the redo scan start point
//! (including the *unforced* tail — the TC's log buffer is intact).
//! Active transactions keep running afterwards; nothing is rolled back.

use crate::stats::TcStats;
use crate::tc::{FlagSlot, Tc};
use crate::tclog::TcLogRecord;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use unbundled_core::{DcId, LogicalOp, Lsn, RequestId, TcError, TcToDc, TxnId};

impl Tc {
    /// Full TC restart from the stable log. Call after `register_dc` /
    /// `register_table` on a freshly constructed `Tc` whose log store
    /// survived the crash (with its unforced tail already dropped).
    pub fn run_recovery(&self) -> Result<(), TcError> {
        self.set_available(false);
        let stable_end = self.log.stable();
        let records = self.log.store().read_all_stable();

        // --- Analysis: losers, undo chains, winner promotions, RSSP.
        let mut rssp = Lsn(1);
        let mut losers: HashMap<TxnId, Vec<(Lsn, DcId, LogicalOp)>> = HashMap::new();
        // Versioned writes per live transaction; committed ones must have
        // their before-versions eliminated even if the post-commit
        // promotion records were lost with the log tail (the commit
        // record alone guarantees eventual promotion — Section 6.2.2).
        let mut vwrites: HashMap<TxnId, Vec<(DcId, LogicalOp)>> = HashMap::new();
        let mut winner_promotes: Vec<(DcId, LogicalOp)> = Vec::new();
        let mut max_txn = 0u64;
        for (seq, rec) in &records {
            if let Some(t) = rec.txn() {
                max_txn = max_txn.max(t.0);
            }
            match rec {
                TcLogRecord::Checkpoint { rssp: r, .. } => rssp = (*r).max(rssp),
                TcLogRecord::Promote { old, new, floor } => {
                    // Re-derive the failover topology: ops addressed to
                    // the deposed primary go to the promoted DC, and raw
                    // history below the floor is never replayed to it
                    // (its replica-era state has abLSN holes at
                    // rolled-back operations).
                    self.install_promotion(*old, *new);
                    self.raise_redo_floor(*new, *floor);
                }
                TcLogRecord::Begin { txn } => {
                    losers.insert(*txn, Vec::new());
                }
                TcLogRecord::Op { txn, dc, op, undo } => {
                    if let (Some(chain), Some(u)) = (losers.get_mut(txn), undo.clone()) {
                        chain.push((Lsn(*seq), *dc, u));
                    }
                    if let LogicalOp::VersionedWrite { table, key, .. } = op {
                        vwrites.entry(*txn).or_default().push((
                            *dc,
                            LogicalOp::PromoteVersion {
                                table: *table,
                                key: key.clone(),
                            },
                        ));
                    }
                }
                TcLogRecord::Commit { txn } => {
                    losers.remove(txn);
                    if let Some(p) = vwrites.remove(txn) {
                        winner_promotes.extend(p);
                    }
                }
                TcLogRecord::Abort { txn } => {
                    losers.remove(txn);
                    vwrites.remove(txn);
                }
                TcLogRecord::RedoOnly { .. } => {}
            }
        }
        self.set_next_txn_floor(max_txn + 1);
        self.acks.reset(stable_end);
        self.rssp.store(rssp.0.max(1), Ordering::Relaxed);

        // --- Restart conversation, half one: reset.
        let dcs: Vec<DcId> = self.links.read().keys().copied().collect();
        for &dc in &dcs {
            self.begin_restart_with(dc, stable_end)?;
        }

        // --- Redo: repeat history logically from the RSSP. A promoted
        // DC additionally has a redo floor: records below it are stable
        // there and must not be replayed raw.
        for (seq, rec) in &records {
            if *seq < rssp.0 {
                continue;
            }
            match rec {
                TcLogRecord::Op { dc, op, .. } | TcLogRecord::RedoOnly { dc, op, .. } => {
                    let target = self.resolve_dc(*dc);
                    if let Some(floor) = self.redo_floor(target) {
                        if Lsn(*seq) < floor {
                            continue;
                        }
                    }
                    TcStats::bump(&self.stats().redo_resends);
                    // Deterministic logical errors (e.g. a replayed insert
                    // that originally failed) are part of history: ignore.
                    let _ = self.send_op(*dc, RequestId::Op(Lsn(*seq)), op, true)?;
                }
                _ => {}
            }
        }

        // --- Re-derive winner promotions (idempotent: promoting a
        // record with no pending version is a no-op).
        for (dc, op) in winner_promotes {
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn: TxnId(0),
                dc,
                op: op.clone(),
            });
            let _ = self.send_op(dc, RequestId::Op(l), &op, true)?;
        }

        // --- Undo losers: inverse operations in reverse LSN order.
        let mut undo_work: Vec<(Lsn, TxnId, DcId, LogicalOp)> = Vec::new();
        for (txn, chain) in &losers {
            for (lsn, dc, inv) in chain {
                undo_work.push((*lsn, *txn, *dc, inv.clone()));
            }
        }
        undo_work.sort_by_key(|w| std::cmp::Reverse(w.0));
        for (_, txn, dc, inv) in undo_work {
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn,
                dc,
                op: inv.clone(),
            });
            TcStats::bump(&self.stats().undo_ops);
            let _ = self.send_op(dc, RequestId::Op(l), &inv, true)?;
        }
        for txn in losers.keys() {
            self.log_bookkeeping(TcLogRecord::Abort { txn: *txn });
        }
        self.force_log();

        // --- Restart conversation, half two: done; resume.
        for &dc in &dcs {
            self.end_restart_with(dc)?;
        }
        self.set_available(true);
        self.force_and_publish();
        Ok(())
    }

    /// Drive recovery of a single crashed-and-rebooted DC (the TC is
    /// healthy; its full log — including the unforced tail — is intact).
    pub fn recover_dc(&self, dc: DcId) -> Result<(), TcError> {
        TcStats::bump(&self.stats().dc_recoveries);
        self.gate(dc);
        let result = self.recover_dc_inner(dc);
        self.ungate(dc);
        result
    }

    fn recover_dc_inner(&self, dc: DcId) -> Result<(), TcError> {
        // The DC rebooted from stable state: nothing of ours is cached,
        // so the reset half is trivial — but the conversation is the
        // same, and the DC replies once its structures are well-formed.
        self.begin_restart_with(dc, self.log.stable())?;
        let rssp = self.rssp().0;
        let target = self.resolve_dc(dc);
        // A promoted DC's redo floor: below it the flushed state made
        // stable at promotion is the authority — never replay raw.
        let floor = self.redo_floor(target).unwrap_or(Lsn(0)).0.max(rssp);
        for (seq, rec) in self.log.store().read_all_volatile() {
            if seq < floor {
                continue;
            }
            match rec {
                // Lineage-aware: records logged against an id this DC
                // was promoted over belong to it too.
                TcLogRecord::Op { dc: d, op, .. } | TcLogRecord::RedoOnly { dc: d, op, .. }
                    if self.resolve_dc(d) == target =>
                {
                    TcStats::bump(&self.stats().redo_resends);
                    let _ = self.send_op(dc, RequestId::Op(Lsn(seq)), &op, true)?;
                }
                _ => {}
            }
        }
        self.end_restart_with(dc)?;
        self.force_and_publish();
        Ok(())
    }

    pub(crate) fn begin_restart_with(&self, dc: DcId, stable_end: Lsn) -> Result<(), TcError> {
        let slot = Arc::new(FlagSlot {
            val: Mutex::new(false),
            cv: Condvar::new(),
        });
        self.restart_ready.lock().insert(dc, slot.clone());
        self.link(dc)?.send(TcToDc::RestartBegin {
            tc: self.id(),
            stable_end,
        });
        Self::await_flag(&slot);
        self.restart_ready.lock().remove(&dc);
        Ok(())
    }

    pub(crate) fn end_restart_with(&self, dc: DcId) -> Result<(), TcError> {
        let slot = Arc::new(FlagSlot {
            val: Mutex::new(false),
            cv: Condvar::new(),
        });
        self.restart_done.lock().insert(dc, slot.clone());
        self.link(dc)?.send(TcToDc::RestartEnd { tc: self.id() });
        Self::await_flag(&slot);
        self.restart_done.lock().remove(&dc);
        Ok(())
    }

    fn await_flag(slot: &Arc<FlagSlot>) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut v = slot.val.lock();
        while !*v {
            if slot.cv.wait_until(&mut v, deadline).timed_out() {
                break;
            }
        }
    }

    pub(crate) fn set_next_txn_floor(&self, floor: u64) {
        // next_txn is private to tc.rs; route through a dedicated setter.
        self.bump_txn_counter_to(floor);
    }

    /// Drop all volatile transaction state (crash simulation helper used
    /// together with `LogStore::crash` by the kernel's crash injector).
    pub fn crash_volatile(&self) {
        self.set_available(false);
        self.txns.lock().clear();
        self.pending.lock().clear();
        self.log.store().crash();
    }

    /// Active transactions (diagnostics).
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.txns.lock().keys().copied().collect()
    }
}
