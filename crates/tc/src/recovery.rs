//! TC restart and DC-crash recovery (paper Sections 4.2.1 `restart` and
//! 5.3.2).
//!
//! **TC restart** (after the TC lost its volatile state, including the
//! unforced log tail): tell every DC to discard effects of operations
//! beyond the stable log end (causality guarantees they are cache-only),
//! then repeat history logically — resend every logged operation from the
//! redo scan start point in LSN order (idempotence makes this
//! exactly-once) — and finally roll back loser transactions with inverse
//! operations taken from the logged undo information.
//!
//! **DC-crash recovery** (the DC rebooted from its stable state; the TC
//! is healthy): after the DC's own restart has made its structures
//! well-formed, the TC resends operations from the redo scan start point
//! (including the *unforced* tail — the TC's log buffer is intact).
//! Active transactions keep running afterwards; nothing is rolled back.

use crate::stats::TcStats;
use crate::tc::{FlagSlot, Tc};
use crate::tclog::TcLogRecord;
use crate::twopc::TwopcOutcome;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use unbundled_core::{DcId, Key, LogicalOp, Lsn, RequestId, TableId, TcError, TcId, TcToDc, TxnId};

impl Tc {
    /// Full TC restart from the stable log. Call after `register_dc` /
    /// `register_table` on a freshly constructed `Tc` whose log store
    /// survived the crash (with its unforced tail already dropped).
    pub fn run_recovery(&self) -> Result<(), TcError> {
        self.set_available(false);
        let stable_end = self.log.stable();
        let records = self.log.store().read_all_stable();

        // --- Analysis: losers, undo chains, winner promotions, RSSP.
        let mut rssp = Lsn(1);
        let mut losers: HashMap<TxnId, Vec<(Lsn, DcId, LogicalOp)>> = HashMap::new();
        // Versioned writes per live transaction; committed ones must have
        // their before-versions eliminated even if the post-commit
        // promotion records were lost with the log tail (the commit
        // record alone guarantees eventual promotion — Section 6.2.2).
        let mut vwrites: HashMap<TxnId, Vec<(DcId, LogicalOp)>> = HashMap::new();
        let mut winner_promotes: Vec<(DcId, LogicalOp)> = Vec::new();
        // MVCC commit stamps. A winner's versions must carry its commit
        // LSN even if the stamp records were lost with the log tail (a
        // concurrent force can make the commit record stable before the
        // stamps are appended): track every live transaction's last
        // write per key, remember each winner's commit point, collect
        // the stamps actually present in the log, and synthesize the
        // missing ones after redo.
        let mut wtrack: HashMap<TxnId, HashMap<(DcId, TableId, Key), Lsn>> = HashMap::new();
        let mut stamp_cands: Vec<(DcId, TableId, Key, Lsn, Lsn)> = Vec::new();
        let mut stamps_logged: HashSet<(TableId, Key, Lsn)> = HashSet::new();
        // Cross-TC 2PC state: prepared participant branches (in-doubt
        // unless a later resolution record appears), our own retained
        // commit decisions (re-pinned and re-broadcast), and Begin LSNs
        // (the log floor a parked in-doubt branch pins).
        let mut prepared: HashMap<TxnId, (TcId, TxnId)> = HashMap::new();
        let mut decisions: Vec<(TxnId, Vec<TcId>, Lsn)> = Vec::new();
        let mut begins: HashMap<TxnId, Lsn> = HashMap::new();
        // Failover intents without a matching Promote record: the TC
        // crashed mid-promotion; re-drive it below.
        let mut promote_intents: Vec<(DcId, DcId)> = Vec::new();
        // Elastic rebalance: the latest RebalanceDone wins; an intent
        // without a matching done record means the move never took
        // effect (the map is only republished after the done record is
        // stable) and is simply discarded.
        let mut rebalance_done: Option<(u64, u64, TcId, u64)> = None;
        let mut max_txn = 0u64;
        for (seq, rec) in &records {
            if let Some(t) = rec.txn() {
                max_txn = max_txn.max(t.0);
            }
            match rec {
                TcLogRecord::Checkpoint { rssp: r, .. } => rssp = (*r).max(rssp),
                TcLogRecord::Promote { old, new, floor } => {
                    // Re-derive the failover topology: ops addressed to
                    // the deposed primary go to the promoted DC, and raw
                    // history below the floor is never replayed to it
                    // (its replica-era state has abLSN holes at
                    // rolled-back operations).
                    self.install_promotion(*old, *new);
                    self.raise_redo_floor(*new, *floor);
                    promote_intents.retain(|(o, n)| !(o == old && n == new));
                }
                TcLogRecord::PromoteIntent { old, new } => {
                    promote_intents.push((*old, *new));
                }
                TcLogRecord::Begin { txn } => {
                    losers.insert(*txn, Vec::new());
                    begins.insert(*txn, Lsn(*seq));
                }
                TcLogRecord::Op { txn, dc, op, undo } => {
                    if let (Some(chain), Some(u)) = (losers.get_mut(txn), undo.clone()) {
                        chain.push((Lsn(*seq), *dc, u));
                    }
                    if op.is_mutation() {
                        if let Some(k) = op.point_key() {
                            wtrack
                                .entry(*txn)
                                .or_default()
                                .insert((*dc, op.table(), k.clone()), Lsn(*seq));
                        }
                    }
                    if let LogicalOp::VersionedWrite { table, key, .. } = op {
                        vwrites.entry(*txn).or_default().push((
                            *dc,
                            LogicalOp::PromoteVersion {
                                table: *table,
                                key: key.clone(),
                            },
                        ));
                    }
                }
                TcLogRecord::Commit { txn } => {
                    losers.remove(txn);
                    prepared.remove(txn);
                    if let Some(p) = vwrites.remove(txn) {
                        winner_promotes.extend(p);
                    }
                    if let Some(w) = wtrack.remove(txn) {
                        for ((dc, table, key), op_lsn) in w {
                            stamp_cands.push((dc, table, key, op_lsn, Lsn(*seq)));
                        }
                    }
                }
                TcLogRecord::Abort { txn } => {
                    losers.remove(txn);
                    prepared.remove(txn);
                    vwrites.remove(txn);
                    wtrack.remove(txn);
                }
                TcLogRecord::Prepare { txn, coord, gtxn } => {
                    prepared.insert(*txn, (*coord, *gtxn));
                }
                TcLogRecord::CommitDecision { txn, participants } => {
                    // The distributed commit point: this transaction is a
                    // winner, and the decision stays pinned until every
                    // participant re-acknowledges it.
                    losers.remove(txn);
                    if let Some(p) = vwrites.remove(txn) {
                        winner_promotes.extend(p);
                    }
                    // A decision with no participants needs no acks;
                    // re-pinning it would block truncation forever.
                    if !participants.is_empty() {
                        decisions.push((*txn, participants.clone(), Lsn(*seq)));
                    }
                    if let Some(w) = wtrack.remove(txn) {
                        for ((dc, table, key), op_lsn) in w {
                            stamp_cands.push((dc, table, key, op_lsn, Lsn(*seq)));
                        }
                    }
                }
                TcLogRecord::ParticipantCommit { txn } => {
                    losers.remove(txn);
                    prepared.remove(txn);
                    if let Some(p) = vwrites.remove(txn) {
                        winner_promotes.extend(p);
                    }
                    if let Some(w) = wtrack.remove(txn) {
                        for ((dc, table, key), op_lsn) in w {
                            stamp_cands.push((dc, table, key, op_lsn, Lsn(*seq)));
                        }
                    }
                }
                TcLogRecord::ParticipantAbort { txn } => {
                    losers.remove(txn);
                    prepared.remove(txn);
                    vwrites.remove(txn);
                    wtrack.remove(txn);
                }
                TcLogRecord::RebalanceIntent { .. } => {}
                TcLogRecord::RebalanceDone {
                    lo, hi, to, epoch, ..
                } => {
                    if rebalance_done.is_none_or(|(_, _, _, e)| *epoch > e) {
                        rebalance_done = Some((*lo, *hi, *to, *epoch));
                    }
                }
                TcLogRecord::RedoOnly { op, .. } => {
                    if let LogicalOp::StampCommit { table, key, op, .. } = op {
                        stamps_logged.insert((*table, key.clone(), *op));
                    }
                }
            }
        }
        self.set_next_txn_floor(max_txn + 1);
        self.acks.reset(stable_end);
        self.rssp.store(rssp.0.max(1), Ordering::Relaxed);

        // --- Elastic rebalance: a RebalanceDone whose epoch is above
        // the installed map's means the move committed but the crash
        // interrupted the republish. Re-install the fence (no new work
        // may enter the moved range under the stale map) and stash the
        // move; the kernel consumes it after recovery and finishes the
        // republish, which clears the fence.
        if let Some((lo, hi, to, epoch)) = rebalance_done {
            if epoch > self.map_epoch() {
                *self.rebalance_fence.lock() =
                    Some(crate::rebalance::RebalanceFence { lo, hi, to, epoch });
                *self.recovered_rebalance.lock() = Some((lo, hi, to, epoch));
            }
        }

        // --- Resolve prepared (in-doubt) participant branches against
        // their coordinators: presumed abort — a stable CommitDecision in
        // the coordinator's log commits the branch; no decision and no
        // live coordinator transaction aborts it; a coordinator still
        // mid-commit parks the branch with its locks re-acquired.
        #[allow(clippy::type_complexity)]
        let mut branch_commits: Vec<(
            TxnId,
            TcId,
            TxnId,
            Vec<((DcId, TableId, Key), Lsn)>,
        )> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut branch_parks: Vec<(
            TxnId,
            TcId,
            TxnId,
            Lsn,
            Vec<(Lsn, DcId, LogicalOp)>,
            Vec<(DcId, TableId, Key)>,
        )> = Vec::new();
        for (txn, (coord, gtxn)) in &prepared {
            if !losers.contains_key(txn) {
                continue;
            }
            let outcome = match self.peer_tc(*coord) {
                Some(p) => p.twopc_outcome_for(*gtxn),
                // No handle to the coordinator at all: presume abort.
                None => TwopcOutcome::Aborted,
            };
            match outcome {
                TwopcOutcome::Committed => {
                    losers.remove(txn);
                    if let Some(p) = vwrites.remove(txn) {
                        winner_promotes.extend(p);
                    }
                    // The branch's versions are stamped at the fresh
                    // ParticipantCommit LSN logged below.
                    let writes = wtrack
                        .remove(txn)
                        .map(|m| m.into_iter().collect())
                        .unwrap_or_default();
                    branch_commits.push((*txn, *coord, *gtxn, writes));
                }
                TwopcOutcome::InDoubt => {
                    let chain = losers.remove(txn).unwrap_or_default();
                    let promotes = vwrites
                        .remove(txn)
                        .unwrap_or_default()
                        .into_iter()
                        .filter_map(|(dc, op)| match op {
                            LogicalOp::PromoteVersion { table, key } => Some((dc, table, key)),
                            _ => None,
                        })
                        .collect();
                    let first = begins.get(txn).copied().unwrap_or(Lsn(1));
                    branch_parks.push((*txn, *coord, *gtxn, first, chain, promotes));
                }
                // Stays a loser; undone below (with a ParticipantAbort
                // record instead of Abort).
                TwopcOutcome::Aborted => {}
            }
        }

        // --- Restart conversation, half one: reset.
        let dcs: Vec<DcId> = self.links.read().keys().copied().collect();
        for &dc in &dcs {
            self.begin_restart_with(dc, stable_end)?;
        }

        // --- Redo: repeat history logically from the RSSP. A promoted
        // DC additionally has a redo floor: records below it are stable
        // there and must not be replayed raw.
        for (seq, rec) in &records {
            if *seq < rssp.0 {
                continue;
            }
            match rec {
                TcLogRecord::Op { dc, op, .. } | TcLogRecord::RedoOnly { dc, op, .. } => {
                    let target = self.resolve_dc(*dc);
                    if let Some(floor) = self.redo_floor(target) {
                        if Lsn(*seq) < floor {
                            continue;
                        }
                    }
                    TcStats::bump(&self.stats().redo_resends);
                    // Deterministic logical errors (e.g. a replayed insert
                    // that originally failed) are part of history: ignore.
                    let _ = self.send_op(*dc, RequestId::Op(Lsn(*seq)), op, true)?;
                }
                _ => {}
            }
        }

        // --- Synthesize missing commit stamps: a winner whose stamp
        // records were lost with the log tail (its commit record made
        // stable by a concurrent force) still gets its versions tagged
        // with its commit LSN. Stamps present in the log were already
        // resent by the redo pass above and are skipped here; re-sent
        // stamps are deterministic no-ops at the DC.
        for (dc, table, key, op_lsn, commit) in stamp_cands {
            if stamps_logged.contains(&(table, key.clone(), op_lsn)) {
                continue;
            }
            let op = LogicalOp::StampCommit {
                table,
                key,
                op: op_lsn,
                commit,
            };
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn: TxnId(0),
                dc,
                op: op.clone(),
            });
            let _ = self.send_op(dc, RequestId::Op(l), &op, true)?;
        }

        // --- Re-derive winner promotions (idempotent: promoting a
        // record with no pending version is a no-op).
        for (dc, op) in winner_promotes {
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn: TxnId(0),
                dc,
                op: op.clone(),
            });
            let _ = self.send_op(dc, RequestId::Op(l), &op, true)?;
        }

        // --- Undo losers: inverse operations in reverse LSN order.
        let mut undo_work: Vec<(Lsn, TxnId, DcId, LogicalOp)> = Vec::new();
        for (txn, chain) in &losers {
            for (lsn, dc, inv) in chain {
                undo_work.push((*lsn, *txn, *dc, inv.clone()));
            }
        }
        undo_work.sort_by_key(|w| std::cmp::Reverse(w.0));
        for (_, txn, dc, inv) in undo_work {
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn,
                dc,
                op: inv.clone(),
            });
            TcStats::bump(&self.stats().undo_ops);
            let _ = self.send_op(dc, RequestId::Op(l), &inv, true)?;
        }
        for txn in losers.keys() {
            // A prepared branch resolves with the participant-side 2PC
            // records so a later recovery does not re-ask the
            // coordinator.
            if prepared.contains_key(txn) {
                self.log_bookkeeping(TcLogRecord::ParticipantAbort { txn: *txn });
            } else {
                self.log_bookkeeping(TcLogRecord::Abort { txn: *txn });
            }
        }
        for (txn, _, _, writes) in &branch_commits {
            let commit = self.log_bookkeeping(TcLogRecord::ParticipantCommit { txn: *txn });
            for ((dc, table, key), op_lsn) in writes {
                let op = LogicalOp::StampCommit {
                    table: *table,
                    key: key.clone(),
                    op: *op_lsn,
                    commit,
                };
                let l = self.log_op_record(TcLogRecord::RedoOnly {
                    txn: *txn,
                    dc: *dc,
                    op: op.clone(),
                });
                let _ = self.send_op(*dc, RequestId::Op(l), &op, true)?;
            }
        }
        self.force_log();

        // --- Park still-in-doubt branches (locks re-acquired) before
        // accepting new work, so conflicting transactions block instead
        // of reading uncommitted state.
        for (txn, coord, gtxn, first, chain, promotes) in branch_parks {
            self.park_indoubt_recovered(txn, coord, gtxn, first, &chain, promotes);
        }

        // --- Restart conversation, half two: done; resume.
        for &dc in &dcs {
            self.end_restart_with(dc)?;
        }
        self.set_available(true);
        self.force_and_publish();

        // --- 2PC tail. Acknowledge branch commits only now: the
        // ParticipantCommit records above are stable, so the coordinator
        // may truncate the decisions away.
        for (_, coord, gtxn, _) in &branch_commits {
            TcStats::bump(&self.stats().indoubt_resolved);
            if let Some(p) = self.peer_tc(*coord) {
                p.twopc_ack(*gtxn, self.id());
            }
        }
        // Coordinator side: re-pin every retained decision and
        // re-broadcast it (idempotent at the participants — branches
        // already resolved simply re-acknowledge).
        if !decisions.is_empty() {
            let mut pd = self.pending_decisions.lock();
            for (txn, parts, lsn) in &decisions {
                pd.insert(*txn, (*lsn, parts.iter().copied().collect()));
            }
            drop(pd);
            self.redeliver_decisions();
        }

        // --- Re-drive failovers whose intent was forced but whose
        // completion was lost with the crash. Best effort: the replica
        // may itself be gone, in which case the deployment re-detects.
        for (old, new) in promote_intents {
            let _ = self.promote_replica(old, new);
        }
        Ok(())
    }

    /// Drive recovery of a single crashed-and-rebooted DC (the TC is
    /// healthy; its full log — including the unforced tail — is intact).
    pub fn recover_dc(&self, dc: DcId) -> Result<(), TcError> {
        TcStats::bump(&self.stats().dc_recoveries);
        self.gate(dc);
        let result = self.recover_dc_inner(dc);
        self.ungate(dc);
        result
    }

    fn recover_dc_inner(&self, dc: DcId) -> Result<(), TcError> {
        // The DC rebooted from stable state: nothing of ours is cached,
        // so the reset half is trivial — but the conversation is the
        // same, and the DC replies once its structures are well-formed.
        self.begin_restart_with(dc, self.log.stable())?;
        let rssp = self.rssp().0;
        let target = self.resolve_dc(dc);
        // A promoted DC's redo floor: below it the flushed state made
        // stable at promotion is the authority — never replay raw.
        let floor = self.redo_floor(target).unwrap_or(Lsn(0)).0.max(rssp);
        for (seq, rec) in self.log.store().read_all_volatile() {
            if seq < floor {
                continue;
            }
            match rec {
                // Lineage-aware: records logged against an id this DC
                // was promoted over belong to it too.
                TcLogRecord::Op { dc: d, op, .. } | TcLogRecord::RedoOnly { dc: d, op, .. }
                    if self.resolve_dc(d) == target =>
                {
                    TcStats::bump(&self.stats().redo_resends);
                    let _ = self.send_op(dc, RequestId::Op(Lsn(seq)), &op, true)?;
                }
                _ => {}
            }
        }
        self.end_restart_with(dc)?;
        self.force_and_publish();
        Ok(())
    }

    pub(crate) fn begin_restart_with(&self, dc: DcId, stable_end: Lsn) -> Result<(), TcError> {
        let slot = Arc::new(FlagSlot {
            val: Mutex::new(false),
            cv: Condvar::new(),
        });
        self.restart_ready.lock().insert(dc, slot.clone());
        self.link(dc)?.send(TcToDc::RestartBegin {
            tc: self.id(),
            stable_end,
        });
        Self::await_flag(&slot);
        self.restart_ready.lock().remove(&dc);
        Ok(())
    }

    pub(crate) fn end_restart_with(&self, dc: DcId) -> Result<(), TcError> {
        let slot = Arc::new(FlagSlot {
            val: Mutex::new(false),
            cv: Condvar::new(),
        });
        self.restart_done.lock().insert(dc, slot.clone());
        self.link(dc)?.send(TcToDc::RestartEnd { tc: self.id() });
        Self::await_flag(&slot);
        self.restart_done.lock().remove(&dc);
        Ok(())
    }

    fn await_flag(slot: &Arc<FlagSlot>) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut v = slot.val.lock();
        while !*v {
            if slot.cv.wait_until(&mut v, deadline).timed_out() {
                break;
            }
        }
    }

    pub(crate) fn set_next_txn_floor(&self, floor: u64) {
        // next_txn is private to tc.rs; route through a dedicated setter.
        self.bump_txn_counter_to(floor);
    }

    /// Drop all volatile transaction state (crash simulation helper used
    /// together with `LogStore::crash` by the kernel's crash injector).
    pub fn crash_volatile(&self) {
        self.set_available(false);
        // Wake anyone parked on a rebalance fence: they must observe
        // unavailability, not sleep out their timeout against a dead TC.
        self.abandon_fence();
        self.txns.lock().clear();
        self.pending.lock().clear();
        self.participants.lock().clear();
        self.pending_decisions.lock().clear();
        self.log.store().crash();
    }

    /// Active transactions (diagnostics).
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.txns.lock().keys().copied().collect()
    }
}
