//! Cross-TC transactions: two-phase commit over the shards' redo logs.
//!
//! A sharded transaction service partitions the key space across TCs
//! with a [`TcShardMap`]. A transaction begins at (and is coordinated
//! by) the shard owning its first-touched range; an operation on a key
//! owned by another shard is *forwarded* to that shard's TC, which runs
//! it as a **participant branch** — taking its own locks, logging to its
//! own redo log and driving its own DCs, exactly like a local
//! transaction. Lock safety is preserved because the map partitions the
//! key space: only the owning shard ever locks a key.
//!
//! Commit is two-phase, written through the *existing* logical redo
//! logs (no separate 2PC log):
//!
//! 1. **Prepare** — each participant forces a [`TcLogRecord::Prepare`]
//!    (riding the group-commit gather window) and votes yes; its branch
//!    keeps its locks and becomes *in-doubt*.
//! 2. **Decide** — the coordinator forces a
//!    [`TcLogRecord::CommitDecision`]: the commit point. It then tells
//!    every participant, which forces a [`TcLogRecord::ParticipantCommit`]
//!    before acknowledging — so a decision is only forgotten (truncated)
//!    once no participant can ever need to re-read it.
//!
//! Recovery is **presumed abort**: an aborting coordinator logs only its
//! ordinary Abort (or nothing), and a participant whose Prepare has no
//! later resolution record re-resolves against the coordinator's log —
//! a stable `CommitDecision` there means commit; no decision and no
//! live coordinator transaction means abort. A participant that finds
//! the coordinator still mid-commit parks the branch (locks re-acquired)
//! until the decision broadcast arrives.
//!
//! Cross-shard deadlocks are not centrally detected (each shard's lock
//! manager sees only its own waits-for edges); the lock timeout breaks
//! them, aborting the waiting transaction.

use crate::stats::TcStats;
use crate::tc::{Tc, TxnState};
use crate::tclog::TcLogRecord;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use unbundled_core::{
    DcId, Key, LogicalOp, Lsn, ReadConsistency, TableId, TcError, TcId, TcShardMap, TxnId,
};
use unbundled_lockmgr::{LockMode, LockName};
use unbundled_obs as obs;

/// A handle to a peer TC shard that survives the peer's reboots: the
/// kernel registers an indirection that always resolves the *current*
/// `Tc` built over the peer's (crash-surviving) log store.
pub trait TcPeer: Send + Sync {
    /// The peer's current `Tc`.
    fn resolve(&self) -> Arc<Tc>;
}

/// The kernel's TC nodes hold their current `Tc` behind exactly this
/// shape; registering the node's cell as the peer handle makes peer
/// references survive reboots.
impl TcPeer for Mutex<Arc<Tc>> {
    fn resolve(&self) -> Arc<Tc> {
        self.lock().clone()
    }
}

/// A plain `Arc<Tc>` works as a peer for single-`Tc`-lifetime setups
/// (unit tests without a kernel).
impl TcPeer for Arc<Tc> {
    fn resolve(&self) -> Arc<Tc> {
        self.clone()
    }
}

/// Outcome of a distributed transaction as seen from its coordinator's
/// log + volatile state (the presumed-abort decision rule).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwopcOutcome {
    /// A stable `CommitDecision` exists: committed everywhere.
    Committed,
    /// No decision, and the coordinator cannot commit it anymore
    /// (transaction unknown, or coordinator crashed and lost it).
    Aborted,
    /// The coordinator is alive and still mid-commit; the decision will
    /// arrive (or the coordinator will abort).
    InDoubt,
}

impl Tc {
    // ------------------------------------------------------------------
    // Shard map + peers
    // ------------------------------------------------------------------

    /// Install the key-range → TC shard map. Keys owned by other shards
    /// are forwarded; commit of a multi-shard transaction goes through
    /// 2PC. `register_peer` every other shard before use.
    ///
    /// Installing a map whose epoch reaches a pending rebalance fence's
    /// epoch *clears* the fence: the move it guarded is published, so
    /// blocked work wakes up and re-resolves ownership under the new
    /// map.
    pub fn set_shard_map(&self, map: TcShardMap) {
        let epoch = map.epoch();
        *self.shard_map.write() = Some(map);
        self.clear_fence_up_to(epoch);
    }

    /// The epoch of the installed shard map (0 when unsharded).
    pub fn map_epoch(&self) -> u64 {
        self.shard_map.read().as_ref().map_or(0, |m| m.epoch())
    }

    /// The installed shard map, if any.
    pub fn shard_map(&self) -> Option<TcShardMap> {
        self.shard_map.read().clone()
    }

    /// Wire a peer TC shard.
    pub fn register_peer(&self, id: TcId, peer: Arc<dyn TcPeer>) {
        self.peers.write().insert(id, peer);
    }

    pub(crate) fn peer_tc(&self, id: TcId) -> Option<Arc<Tc>> {
        self.peers.read().get(&id).map(|p| p.resolve())
    }

    /// The owning shard of `key` when it is *not* this TC (`None` means
    /// local — no map installed, or we own the range).
    pub(crate) fn shard_owner(&self, key: &Key) -> Option<TcId> {
        let g = self.shard_map.read();
        let map = g.as_ref()?;
        let owner = map.tc_for(key);
        if owner == self.id() {
            None
        } else {
            Some(owner)
        }
    }

    /// Prepared participant branches still awaiting a decision
    /// (diagnostics: a quiesced TC should report zero).
    pub fn indoubt_branches(&self) -> usize {
        self.txns
            .lock()
            .values()
            .filter(|st| st.lock().prepared)
            .count()
    }

    /// Commit decisions not yet acknowledged by every participant
    /// (diagnostics).
    pub fn pending_decision_count(&self) -> usize {
        self.pending_decisions.lock().len()
    }

    // ------------------------------------------------------------------
    // Coordinator side: forwarding
    // ------------------------------------------------------------------

    /// How many 1ms re-route attempts a forward rejected as stale gets
    /// before the transaction is rolled back (the kernel's republish
    /// reaches every TC within a few map installs, so this is generous).
    fn reroute_retries(&self) -> u32 {
        self.cfg
            .lock_timeout
            .map(|d| d.as_millis() as u32)
            .unwrap_or(2000)
            .max(16)
    }

    pub(crate) fn forward_mutate(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
        owner: TcId,
        op: LogicalOp,
    ) -> Result<(), TcError> {
        let mut owner = owner;
        let mut retries = 0u32;
        loop {
            let peer = match self.peer_tc(owner) {
                Some(p) => p,
                None => {
                    self.rollback(txn)?;
                    return Err(TcError::NoSuchTc(owner));
                }
            };
            // If this shard already executed ops for us, its branch must
            // still exist — a participant that crashed in between rolled
            // the branch back (presumed abort), and silently starting a
            // fresh one would commit a partial transaction.
            let expect_branch = st.lock().remotes.contains(&owner);
            let epoch = self.map_epoch();
            match peer.remote_mutate(self.id(), txn, op.clone(), expect_branch, epoch) {
                Ok(()) => {
                    st.lock().remotes.insert(owner);
                    return Ok(());
                }
                Err(TcError::StaleShardMap { .. }) => {
                    // The range moved (or is moving) under this forward.
                    // The op was NOT executed and the branch is intact,
                    // so no repair is needed: wait for the republished
                    // map to land here, re-resolve the owner, re-route.
                    retries += 1;
                    if retries > self.reroute_retries() {
                        self.rollback(txn)?;
                        return Err(TcError::StaleShardMap { tc: owner, epoch });
                    }
                    TcStats::bump(&self.stats().stale_forward_reroutes);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    let key = op.point_key().expect("point mutation").clone();
                    match self.shard_owner(&key) {
                        Some(next) => owner = next,
                        // The range moved *to us*: execute locally.
                        None => return self.mutate(txn, op),
                    }
                }
                Err(e) => {
                    // The participant already rolled its branch back;
                    // abort the whole transaction (rollback notifies the
                    // other participants).
                    self.rollback(txn)?;
                    return Err(Self::map_remote_err(txn, e));
                }
            }
        }
    }

    pub(crate) fn forward_read(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
        owner: TcId,
        table: TableId,
        key: Key,
    ) -> Result<Option<Vec<u8>>, TcError> {
        let mut owner = owner;
        let mut retries = 0u32;
        loop {
            let peer = match self.peer_tc(owner) {
                Some(p) => p,
                None => {
                    self.rollback(txn)?;
                    return Err(TcError::NoSuchTc(owner));
                }
            };
            let expect_branch = st.lock().remotes.contains(&owner);
            let epoch = self.map_epoch();
            match peer.remote_read(self.id(), txn, table, key.clone(), expect_branch, epoch) {
                Ok(v) => {
                    st.lock().remotes.insert(owner);
                    return Ok(v);
                }
                Err(TcError::StaleShardMap { .. }) => {
                    retries += 1;
                    if retries > self.reroute_retries() {
                        self.rollback(txn)?;
                        return Err(TcError::StaleShardMap { tc: owner, epoch });
                    }
                    TcStats::bump(&self.stats().stale_forward_reroutes);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    match self.shard_owner(&key) {
                        Some(next) => owner = next,
                        None => {
                            return self.read(txn, table, key, ReadConsistency::Locking);
                        }
                    }
                }
                Err(e) => {
                    self.rollback(txn)?;
                    return Err(Self::map_remote_err(txn, e));
                }
            }
        }
    }

    /// Re-key a participant's error to the coordinator's transaction id
    /// (the participant reports its branch-local id, meaningless to the
    /// application).
    fn map_remote_err(txn: TxnId, e: TcError) -> TcError {
        match e {
            TcError::Deadlock(_) => TcError::Deadlock(txn),
            TcError::LockTimeout(_) => TcError::LockTimeout(txn),
            TcError::NotActive(_) => TcError::NotActive(txn),
            TcError::OperationFailed(_, d) => TcError::OperationFailed(txn, d),
            other => other,
        }
    }

    // ------------------------------------------------------------------
    // Participant side: branch execution
    // ------------------------------------------------------------------

    /// The local branch of `(coord, gtxn)`, created on first touch.
    ///
    /// With `expect_branch` the coordinator asserts it already ran ops
    /// here; a missing mapping then means this shard crashed in between
    /// and presumed-abort rolled the branch back — refusing (rather than
    /// silently opening a fresh branch) keeps the transaction atomic.
    fn begin_participant(
        &self,
        coord: TcId,
        gtxn: TxnId,
        expect_branch: bool,
    ) -> Result<TxnId, TcError> {
        self.ensure_available()?;
        if let Some(local) = self.participants.lock().get(&(coord, gtxn)).copied() {
            return Ok(local);
        }
        if expect_branch {
            return Err(TcError::NotActive(gtxn));
        }
        let local = self.begin()?;
        self.txn_state(local)?.lock().part_of = Some((coord, gtxn));
        let prior = self.participants.lock().insert((coord, gtxn), local);
        debug_assert!(prior.is_none(), "participant branch raced");
        Ok(local)
    }

    /// Execute one forwarded mutation as a branch of `(coord, gtxn)`.
    /// `epoch` is the sender's shard-map epoch: a mismatch (or a key
    /// this shard no longer owns) is rejected with
    /// [`TcError::StaleShardMap`] *before* any branch state is touched,
    /// so the sender can re-route without repair. On any other failure
    /// the whole branch has been rolled back (the coordinator must then
    /// abort the transaction).
    pub fn remote_mutate(
        &self,
        coord: TcId,
        gtxn: TxnId,
        op: LogicalOp,
        expect_branch: bool,
        epoch: u64,
    ) -> Result<(), TcError> {
        let key = op.point_key().expect("point mutation").clone();
        self.check_forwarded(coord, gtxn, &key, epoch)?;
        let local = self.begin_participant(coord, gtxn, expect_branch)?;
        self.mutate(local, op)
    }

    /// Execute one forwarded serializable point read as a branch of
    /// `(coord, gtxn)`; `epoch` as for [`Tc::remote_mutate`].
    pub fn remote_read(
        &self,
        coord: TcId,
        gtxn: TxnId,
        table: TableId,
        key: Key,
        expect_branch: bool,
        epoch: u64,
    ) -> Result<Option<Vec<u8>>, TcError> {
        self.check_forwarded(coord, gtxn, &key, epoch)?;
        let local = self.begin_participant(coord, gtxn, expect_branch)?;
        self.read(local, table, key, ReadConsistency::Locking)
    }

    /// Phase one, participant side: force a Prepare record (riding the
    /// group-commit gather window) and vote. A `false` vote (unknown
    /// branch, unavailable TC) obliges the coordinator to abort.
    pub fn prepare_participant(&self, coord: TcId, gtxn: TxnId) -> bool {
        if self.ensure_available().is_err() {
            return false;
        }
        let local = match self.participants.lock().get(&(coord, gtxn)).copied() {
            Some(l) => l,
            None => return false,
        };
        let st = match self.txn_state(local) {
            Ok(s) => s,
            Err(_) => return false,
        };
        let lsn = self.log_bookkeeping(TcLogRecord::Prepare {
            txn: local,
            coord,
            gtxn,
        });
        self.force_commit(lsn);
        st.lock().prepared = true;
        TcStats::bump(&self.stats().prepares);
        true
    }

    /// Phase two, participant side: apply the coordinator's decision.
    /// Returns true once the branch is durably resolved — the ack that
    /// lets the coordinator forget the decision. An unknown branch acks
    /// immediately: Prepare is forced *before* the yes vote, so unknown
    /// means already resolved (or never prepared, which presumed abort
    /// resolves identically).
    pub fn decide_participant(&self, coord: TcId, gtxn: TxnId, commit: bool) -> bool {
        if self.ensure_available().is_err() {
            return false;
        }
        let local = match self.participants.lock().get(&(coord, gtxn)).copied() {
            Some(l) => l,
            None => return true,
        };
        self.apply_decision(local, coord, gtxn, commit)
    }

    fn apply_decision(&self, local: TxnId, coord: TcId, gtxn: TxnId, commit: bool) -> bool {
        if commit {
            let st = match self.txn_state(local) {
                Ok(s) => s,
                Err(_) => {
                    self.participants.lock().remove(&(coord, gtxn));
                    return true;
                }
            };
            let lsn = self.log_bookkeeping(TcLogRecord::ParticipantCommit { txn: local });
            // MVCC: the branch's versions are stamped with the
            // ParticipantCommit LSN — commit LSNs are per-TC, so a
            // snapshot read served by this shard compares against its
            // own log positions only.
            let stamps = self.log_stamps(local, &st, lsn);
            // Forced before acknowledging: once the coordinator hears
            // the ack it may truncate the decision away.
            self.force_commit(self.log.last());
            if self.send_stamps(&stamps).is_err() {
                return false;
            }
            self.participants.lock().remove(&(coord, gtxn));
            self.finish_commit_local(local, &st).is_ok()
        } else {
            // rollback logs ParticipantAbort (part_of is set) and drops
            // the mapping.
            self.rollback(local).is_ok()
        }
    }

    /// Re-resolve every branch of a remote transaction against its
    /// coordinator. Prepared (in-doubt) branches commit if the
    /// coordinator's stable log holds the decision, abort if the
    /// coordinator can no longer commit (presumed abort), and stay parked
    /// while the coordinator is mid-commit. Unprepared branches whose
    /// coordinator no longer knows the transaction (it crashed and its
    /// volatile state — including its list of participants — died with
    /// it) are orphans: nothing will ever prepare or abort them, so they
    /// are rolled back here to release their locks. Returns the number of
    /// branches resolved.
    pub fn resolve_indoubt(&self) -> usize {
        let branches: Vec<(TxnId, TcId, TxnId, bool)> = self
            .txns
            .lock()
            .iter()
            .filter_map(|(id, st)| {
                let g = st.lock();
                g.part_of.map(|(c, gt)| (*id, c, gt, g.prepared))
            })
            .collect();
        let mut resolved = 0;
        for (local, coord, gtxn, prepared) in branches {
            let outcome = match self.peer_tc(coord) {
                Some(p) => p.twopc_outcome_for(gtxn),
                // No handle to the coordinator at all: presume abort.
                None => TwopcOutcome::Aborted,
            };
            let commit = match outcome {
                // Coordinator still driving the transaction: leave the
                // branch alone whether prepared (parked in-doubt) or live.
                TwopcOutcome::InDoubt => continue,
                TwopcOutcome::Committed => true,
                TwopcOutcome::Aborted => false,
            };
            if !prepared && commit {
                // A decision that names this shard implies a Prepare was
                // forced here; an unprepared branch can't be part of it.
                debug_assert!(false, "commit decision for unprepared branch");
                continue;
            }
            if self.apply_decision(local, coord, gtxn, commit) {
                resolved += 1;
                TcStats::bump(&self.stats().indoubt_resolved);
                if commit {
                    if let Some(p) = self.peer_tc(coord) {
                        p.twopc_ack(gtxn, self.id());
                    }
                }
            }
        }
        resolved
    }

    // ------------------------------------------------------------------
    // Coordinator side: commit protocol
    // ------------------------------------------------------------------

    /// Two-phase commit of a transaction with participant branches.
    pub(crate) fn commit_cross(&self, txn: TxnId) -> Result<(), TcError> {
        if !self.twopc_prepare(txn)? {
            TcStats::bump(&self.stats().cross_aborts);
            self.rollback(txn)?;
            return Err(TcError::PrepareRefused(txn));
        }
        self.twopc_log_decision(txn)?;
        self.twopc_finish(txn)?;
        TcStats::bump(&self.stats().cross_commits);
        Ok(())
    }

    /// Phase one: collect yes votes from every participant. Exposed as a
    /// separate step so deterministic recovery tests can interleave
    /// crashes between the phases.
    #[doc(hidden)]
    pub fn twopc_prepare(&self, txn: TxnId) -> Result<bool, TcError> {
        self.ensure_available()?;
        let st = self.txn_state(txn)?;
        let mut remotes: Vec<TcId> = st.lock().remotes.iter().copied().collect();
        remotes.sort();
        for r in remotes {
            let _s = obs::span1("tc.twopc_prepare", "participant", r.0 as u64);
            let ok = self
                .peer_tc(r)
                .map(|p| p.prepare_participant(self.id(), txn))
                .unwrap_or(false);
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Phase two, step one: force the commit decision — the commit point
    /// of the distributed transaction. The decision is pinned against
    /// log truncation until every participant acknowledges it.
    #[doc(hidden)]
    pub fn twopc_log_decision(&self, txn: TxnId) -> Result<Lsn, TcError> {
        self.ensure_available()?;
        let _s = obs::span1("tc.twopc_decision", "txn", txn.0);
        let st = self.txn_state(txn)?;
        let mut participants: Vec<TcId> = st.lock().remotes.iter().copied().collect();
        participants.sort();
        let lsn = self.log_bookkeeping(TcLogRecord::CommitDecision {
            txn,
            participants: participants.clone(),
        });
        // A decision with no participants awaits no acks — pinning it
        // would block log truncation forever (nothing ever calls
        // `twopc_ack` for it). This arises when every branch of a
        // nominally cross-shard transaction ends up local, e.g. after a
        // rebalance moved the remote range onto the coordinator.
        if !participants.is_empty() {
            self.pending_decisions
                .lock()
                .insert(txn, (lsn, participants.into_iter().collect()));
        }
        // MVCC: the coordinator's *local* writes are stamped with the
        // decision LSN (the commit point); each participant branch
        // stamps its own writes with its ParticipantCommit LSN in its
        // own LSN space. Stamps are logged before the force and sent
        // after it, under the transaction's still-held locks.
        let stamps = self.log_stamps(txn, &st, lsn);
        self.force_commit(self.log.last());
        self.send_stamps(&stamps)?;
        Ok(lsn)
    }

    /// Phase two, step two: broadcast the decision, then finish locally
    /// (version promotions, lock release).
    #[doc(hidden)]
    pub fn twopc_finish(&self, txn: TxnId) -> Result<(), TcError> {
        self.ensure_available()?;
        let st = self.txn_state(txn)?;
        let mut remotes: Vec<TcId> = st.lock().remotes.iter().copied().collect();
        remotes.sort();
        for r in remotes {
            let acked = self
                .peer_tc(r)
                .map(|p| p.decide_participant(self.id(), txn, true))
                .unwrap_or(false);
            if acked {
                self.twopc_ack(txn, r);
            }
        }
        self.finish_commit_local(txn, &st)
    }

    /// The presumed-abort decision rule, answered from this
    /// (coordinator's) log and volatile state. Works even on a crashed,
    /// not-yet-recovered TC: the log store survives and a forced
    /// decision is in its stable prefix.
    pub fn twopc_outcome_for(&self, gtxn: TxnId) -> TwopcOutcome {
        for (_, rec) in self.log.store().read_all_stable() {
            if let TcLogRecord::CommitDecision { txn, .. } = rec {
                if txn == gtxn {
                    return TwopcOutcome::Committed;
                }
            }
        }
        if self.ensure_available().is_ok() && self.txns.lock().contains_key(&gtxn) {
            TwopcOutcome::InDoubt
        } else {
            TwopcOutcome::Aborted
        }
    }

    /// A participant durably resolved `gtxn`: stop pinning the decision
    /// for it.
    pub fn twopc_ack(&self, gtxn: TxnId, from: TcId) {
        let mut pd = self.pending_decisions.lock();
        if let Some((_, parts)) = pd.get_mut(&gtxn) {
            parts.remove(&from);
            if parts.is_empty() {
                pd.remove(&gtxn);
            }
        }
    }

    /// Oldest unacknowledged commit decision (checkpoint truncation
    /// floor).
    pub(crate) fn twopc_floor(&self) -> Option<Lsn> {
        self.pending_decisions
            .lock()
            .values()
            .map(|(l, _)| *l)
            .min()
    }

    /// Coordinator recovery tail: re-broadcast every retained decision
    /// (idempotent at the participants) and unpin the acknowledged ones.
    /// Run at coordinator recovery, and again whenever a participant
    /// becomes reachable — a decision whose delivery failed while the
    /// participant was down stays pinned (blocking log truncation) until
    /// a retry lands.
    pub fn redeliver_decisions(&self) {
        let pending: Vec<(TxnId, Vec<TcId>)> = self
            .pending_decisions
            .lock()
            .iter()
            .map(|(t, (_, p))| (*t, p.iter().copied().collect()))
            .collect();
        for (gtxn, parts) in pending {
            for r in parts {
                let acked = self
                    .peer_tc(r)
                    .map(|p| p.decide_participant(self.id(), gtxn, true))
                    .unwrap_or(false);
                if acked {
                    self.twopc_ack(gtxn, r);
                }
            }
        }
    }

    /// Participant recovery: reconstruct an in-doubt branch whose
    /// coordinator is still mid-commit — re-acquire its locks and park
    /// it prepared until the decision broadcast (or a later
    /// `resolve_indoubt`) arrives. The inverse ops name every key the
    /// branch wrote; re-locking them restores the isolation the branch
    /// held before the crash.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn park_indoubt_recovered(
        &self,
        local: TxnId,
        coord: TcId,
        gtxn: TxnId,
        first_lsn: Lsn,
        chain: &[(Lsn, DcId, LogicalOp)],
        promotes: Vec<(DcId, TableId, Key)>,
    ) {
        let token = Self::token(local);
        for (_, _, inv) in chain {
            let table = inv.table();
            let _ = self
                .locks
                .lock(token, LockName::Table(table), LockMode::IX, None);
            if let Some(k) = inv.point_key() {
                let _ =
                    self.locks
                        .lock(token, LockName::Record(table, k.clone()), LockMode::X, None);
            }
        }
        for (_, table, key) in &promotes {
            let _ = self
                .locks
                .lock(token, LockName::Table(*table), LockMode::IX, None);
            let _ = self.locks.lock(
                token,
                LockName::Record(*table, key.clone()),
                LockMode::X,
                None,
            );
        }
        // Re-derive the branch's last-write-per-key map so a commit
        // decision arriving after the crash still stamps the branch's
        // versions: the chain is in forward LSN order and each entry's
        // LSN is the original op record's LSN — exactly the version id
        // a stamp targets — so collecting lets later writes win.
        let writes: HashMap<(DcId, TableId, Key), Lsn> = chain
            .iter()
            .filter_map(|(l, dc, inv)| inv.point_key().map(|k| ((*dc, inv.table(), k.clone()), *l)))
            .collect();
        // Re-derive the branch's shard points from what it wrote, so a
        // rebalance drain started after the crash still sees the parked
        // branch as inside (or outside) the moving range.
        let shard_points: HashSet<u64> = chain
            .iter()
            .filter_map(|(_, _, inv)| inv.point_key())
            .chain(promotes.iter().map(|(_, _, k)| k))
            .map(unbundled_core::route_point)
            .collect();
        let st = TxnState {
            id: local,
            first_lsn,
            undo: chain
                .iter()
                .map(|(_, dc, inv)| (*dc, inv.clone()))
                .collect(),
            touched: chain.iter().map(|(_, dc, _)| *dc).collect(),
            cache: HashMap::new(),
            promotes,
            writes,
            snapshot: None,
            remotes: HashSet::new(),
            part_of: Some((coord, gtxn)),
            prepared: true,
            shard_points,
            span: obs::open_span("tc.txn", "txn", local.0),
            lock_wait_ns: 0,
        };
        self.txns.lock().insert(local, Arc::new(Mutex::new(st)));
        self.participants.lock().insert((coord, gtxn), local);
    }
}
