//! The Transactional Component (paper Section 4.1.1).
//!
//! The TC wraps all requests from the application stack: it performs
//! transactional locking *before* any request reaches a DC (so the DC
//! never sees two conflicting operations concurrently — the invariant
//! that makes OPSR logical logging sound), logs logical redo+undo, forces
//! the log for durability, and guarantees atomicity by driving inverse
//! operations on abort.
//!
//! The TC knows tables, keys and key ranges — never pages.

use crate::acks::AckTracker;
use crate::routing::{DcLink, ScanProtocol, TableRoute};
use crate::shipper::{ReplicaLag, Shipper};
use crate::stats::TcStats;
use crate::tclog::{TcLogHandle, TcLogRecord};
use crate::twopc::TcPeer;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unbundled_core::{
    DcError, DcId, DcToTc, Key, LogicalOp, Lsn, OpResult, ReadConsistency, ReadFlavor, RequestId,
    SnapshotSpec, TableId, TcError, TcId, TcShardMap, TcToDc, TxnId,
};
use unbundled_lockmgr::{LockError, LockManager, LockMode, LockName, LockToken};
use unbundled_obs as obs;
use unbundled_storage::{GatherWindow, LogStore};

/// Group-commit tuning (see [`TcConfig::group_commit`]).
#[derive(Clone, Debug)]
pub struct GroupCommitCfg {
    /// Gather window: how long a force leader may hold the flush back
    /// to let more concurrent committers join its group.
    /// [`GatherWindow::Fixed`] with zero disables the deliberate wait —
    /// coalescing then comes only from committers piggybacking while a
    /// flush is in flight; the default [`GatherWindow::Adaptive`] lets
    /// the log's controller grow the window under concurrent commit
    /// pressure and decay it to zero when commits are sparse.
    pub window: GatherWindow,
    /// Cut the gather window short once this many committers (leader
    /// included) are in the group.
    pub max_waiters: usize,
}

impl Default for GroupCommitCfg {
    fn default() -> Self {
        GroupCommitCfg {
            window: GatherWindow::adaptive(),
            max_waiters: 32,
        }
    }
}

/// TC configuration.
#[derive(Clone)]
pub struct TcConfig {
    /// Resend interval for unacknowledged operations.
    pub resend_interval: Duration,
    /// Give up after this many resends (the DC is declared unreachable).
    pub max_resends: u32,
    /// Lock wait bound (None = wait forever, deadlock detection only).
    pub lock_timeout: Option<Duration>,
    /// Range-scan locking protocol (Section 3.1).
    pub scan_protocol: ScanProtocol,
    /// Background force threshold: force + publish EOSL/LWM after this
    /// many appended records even without a commit (keeps the DC's
    /// causality frontier moving for long transactions).
    pub force_every: usize,
    /// Group commit: `None` forces the log (and publishes EOSL/LWM) once
    /// per committing transaction; `Some` routes commits through the
    /// log's group-force path, where one leader's flush covers every
    /// concurrent committer and EOSL/LWM publication is coalesced to one
    /// broadcast per flush.
    pub group_commit: Option<GroupCommitCfg>,
    /// Feed every executed mutation's route point into the per-TC
    /// [`KeySketch`](crate::KeySketch) (one relaxed store per mutation).
    /// On by default; the sketch is what lets the rebalance policy
    /// split a hot shard at its observed traffic median. Turn off only
    /// for microbenchmarks chasing the last nanosecond on an unsharded
    /// deployment.
    pub key_sketch: bool,
}

impl Default for TcConfig {
    fn default() -> Self {
        TcConfig {
            resend_interval: Duration::from_millis(25),
            max_resends: 400,
            lock_timeout: Some(Duration::from_secs(2)),
            scan_protocol: ScanProtocol::fetch_ahead(),
            force_every: 64,
            group_commit: None,
            key_sketch: true,
        }
    }
}

pub(crate) struct ReplySlot {
    pub(crate) val: Mutex<Option<Result<OpResult, DcError>>>,
    pub(crate) cv: Condvar,
}

pub(crate) struct LsnSlot {
    pub(crate) val: Mutex<Option<Lsn>>,
    pub(crate) cv: Condvar,
}

pub(crate) struct FlagSlot {
    pub(crate) val: Mutex<bool>,
    pub(crate) cv: Condvar,
}

/// Per-transaction state.
pub(crate) struct TxnState {
    pub(crate) id: TxnId,
    /// LSN of the Begin record (log truncation floor).
    pub(crate) first_lsn: Lsn,
    /// Inverse operations in forward order (rollback walks it backwards).
    pub(crate) undo: Vec<(DcId, LogicalOp)>,
    /// DCs touched by this transaction.
    pub(crate) touched: HashSet<DcId>,
    /// Values known under lock: (table, key) → payload (None = absent).
    /// This is where undo information for updates/deletes comes from.
    pub(crate) cache: HashMap<(TableId, Key), Option<Vec<u8>>>,
    /// Versioned writes requiring post-commit promotion.
    pub(crate) promotes: Vec<(DcId, TableId, Key)>,
    /// Last write operation LSN per key this transaction mutated — the
    /// version each commit stamp targets (earlier same-transaction
    /// writes are dead the moment they are displaced and are never
    /// stamped; GC reclaims them once their LSN falls under the LWM).
    pub(crate) writes: HashMap<(DcId, TableId, Key), Lsn>,
    /// Pinned MVCC snapshot: the stable LSN captured at this
    /// transaction's first [`SnapshotSpec::Pinned`] read and reused for
    /// every later one (repeatable reads within the transaction).
    pub(crate) snapshot: Option<Lsn>,
    /// Cross-TC coordinator role: participant shards holding branches of
    /// this transaction. Non-empty means commit goes through 2PC.
    pub(crate) remotes: HashSet<TcId>,
    /// Cross-TC participant role: the `(coordinator, global txn)` this
    /// local transaction is a branch of.
    pub(crate) part_of: Option<(TcId, TxnId)>,
    /// Participant role: the branch voted yes and awaits the decision.
    pub(crate) prepared: bool,
    /// Shard-space points of keys this transaction executed locally
    /// (recorded under the rebalance-fence mutex, before the record
    /// lock is drawn). A rebalance drain waits until no live
    /// transaction holds a point inside the moving range; a transaction
    /// that already holds one is a *drain member* and finishes under
    /// the old authority.
    pub(crate) shard_points: HashSet<u64>,
    /// Observability: the transaction's `tc.txn` span (0 when spans are
    /// disabled), closed when the transaction resolves.
    pub(crate) span: u64,
    /// Observability: nanoseconds this transaction spent blocked on
    /// lock waits, accumulated across its operations.
    pub(crate) lock_wait_ns: u64,
}

/// The Transactional Component. Thread-safe; share via [`Arc`].
pub struct Tc {
    id: TcId,
    /// Configuration (public for experiment harnesses).
    pub cfg: TcConfig,
    pub(crate) log: TcLogHandle,
    pub(crate) locks: Arc<LockManager>,
    pub(crate) links: RwLock<HashMap<DcId, Arc<dyn DcLink>>>,
    routes: RwLock<HashMap<TableId, TableRoute>>,
    pub(crate) txns: Mutex<HashMap<TxnId, Arc<Mutex<TxnState>>>>,
    /// Open pinned-snapshot positions (LSN -> pin count). The minimum
    /// clamps the published low-water mark so DC-side version-chain GC
    /// never prunes history an open snapshot still needs.
    snapshot_pins: Mutex<BTreeMap<u64, usize>>,
    pub(crate) pending: Mutex<HashMap<RequestId, Arc<ReplySlot>>>,
    pub(crate) ckpt_waiters: Mutex<HashMap<DcId, Arc<LsnSlot>>>,
    pub(crate) restart_ready: Mutex<HashMap<DcId, Arc<FlagSlot>>>,
    pub(crate) restart_done: Mutex<HashMap<DcId, Arc<FlagSlot>>>,
    /// Out-of-band crash prompts received (kernel drains these).
    crashed_prompts: Mutex<Vec<DcId>>,
    pub(crate) acks: AckTracker,
    /// Serializes LSN allocation with ack-tracker registration: the
    /// low-water mark must never be computed between an append (which
    /// fixes the LSN order) and the `sent`/`bookkeeping` registration of
    /// that LSN — otherwise a concurrent committer could publish an LWM
    /// covering an in-flight operation, and the DC would suppress its
    /// first delivery as a duplicate.
    alloc: Mutex<()>,
    /// Highest EOSL published so far. Group committers whose force was
    /// led by another committer skip the broadcast when the leader's
    /// publication already covers them; holding this lock across the
    /// broadcast keeps publications monotone per DC.
    published: Mutex<Lsn>,
    next_txn: AtomicU64,
    next_read: AtomicU64,
    pub(crate) rssp: AtomicU64,
    appends_since_force: AtomicU64,
    /// DCs currently being recovered: normal sends wait.
    gated: Mutex<HashSet<DcId>>,
    gate_cv: Condvar,
    /// Replication: committed-redo shipping to read-only DC replicas.
    pub(crate) shipper: Shipper,
    /// Failover aliases: a deposed primary's id resolves to the DC that
    /// was promoted in its place, so log records (and straggler sends)
    /// addressed to the old id reach the new primary.
    aliases: RwLock<HashMap<DcId, DcId>>,
    /// Per-DC redo floors from failover promotions: records below the
    /// floor are stable at the promoted DC and must never be replayed
    /// to it (its replica-era state has abLSN holes at rolled-back
    /// operations; raw replay below the floor would re-execute them
    /// against newer state).
    redo_floors: RwLock<HashMap<DcId, Lsn>>,
    /// Round-robin ticket for replica read load-balancing.
    replica_rr: AtomicU64,
    available: AtomicBool,
    /// Key-range → TC ownership. `None` (the default) disables all
    /// cross-TC machinery — every key is local.
    pub(crate) shard_map: RwLock<Option<TcShardMap>>,
    /// Peer TC shards, by id. Handles survive peer reboots (the kernel
    /// registers an indirection that always resolves the current `Tc`).
    pub(crate) peers: RwLock<HashMap<TcId, Arc<dyn TcPeer>>>,
    /// Participant role: `(coordinator, global txn)` → local branch txn.
    pub(crate) participants: Mutex<HashMap<(TcId, TxnId), TxnId>>,
    /// Coordinator role: commit decisions not yet acknowledged by every
    /// participant, pinning log truncation at the decision LSN so an
    /// in-doubt participant can always re-read the decision.
    pub(crate) pending_decisions: Mutex<HashMap<TxnId, (Lsn, HashSet<TcId>)>>,
    /// Elastic rebalance: fence over a key range moving away from this
    /// TC. While set, *new* work on the range blocks (bounded by the
    /// lock timeout) and transactions already inside it drain out;
    /// cleared when a map whose epoch covers the fence is installed.
    pub(crate) rebalance_fence: Mutex<Option<crate::rebalance::RebalanceFence>>,
    pub(crate) fence_cv: Condvar,
    /// A completed rebalance found in the log during recovery whose map
    /// republish may not have happened (crash between the forced
    /// [`TcLogRecord::RebalanceDone`] and the republish): `(lo, hi, to,
    /// epoch)`. The kernel reads this after recovery and finishes the
    /// republish.
    pub(crate) recovered_rebalance: Mutex<Option<(u64, u64, TcId, u64)>>,
    stats: TcStats,
}

impl Tc {
    /// Create a TC over a (possibly crash-surviving) log store. For a
    /// rebooted TC, call [`Tc::run_recovery`] after registering DCs and
    /// tables.
    pub fn new(id: TcId, cfg: TcConfig, log: Arc<LogStore<TcLogRecord>>) -> Arc<Tc> {
        Arc::new(Tc {
            id,
            cfg,
            log: TcLogHandle::new(log),
            locks: Arc::new(LockManager::new()),
            links: RwLock::new(HashMap::new()),
            routes: RwLock::new(HashMap::new()),
            txns: Mutex::new(HashMap::new()),
            snapshot_pins: Mutex::new(BTreeMap::new()),
            pending: Mutex::new(HashMap::new()),
            ckpt_waiters: Mutex::new(HashMap::new()),
            restart_ready: Mutex::new(HashMap::new()),
            restart_done: Mutex::new(HashMap::new()),
            crashed_prompts: Mutex::new(Vec::new()),
            acks: AckTracker::new(),
            alloc: Mutex::new(()),
            published: Mutex::new(Lsn(0)),
            next_txn: AtomicU64::new(1),
            next_read: AtomicU64::new(1),
            rssp: AtomicU64::new(1),
            appends_since_force: AtomicU64::new(0),
            gated: Mutex::new(HashSet::new()),
            gate_cv: Condvar::new(),
            shipper: Shipper::new(),
            aliases: RwLock::new(HashMap::new()),
            redo_floors: RwLock::new(HashMap::new()),
            replica_rr: AtomicU64::new(0),
            available: AtomicBool::new(true),
            shard_map: RwLock::new(None),
            peers: RwLock::new(HashMap::new()),
            participants: Mutex::new(HashMap::new()),
            pending_decisions: Mutex::new(HashMap::new()),
            rebalance_fence: Mutex::new(None),
            fence_cv: Condvar::new(),
            recovered_rebalance: Mutex::new(None),
            stats: TcStats::default(),
        })
    }

    /// This TC's identity.
    pub fn id(&self) -> TcId {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> &TcStats {
        &self.stats
    }

    /// The TC's lock manager (experiment introspection).
    pub fn lock_manager(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The TC's log handle (experiment introspection).
    pub fn log_handle(&self) -> &TcLogHandle {
        &self.log
    }

    /// The current low-water mark: every operation with LSN ≤ this has
    /// been replied to (experiment/test introspection — this is the
    /// frontier [`TcToDc::LowWaterMark`] publications are derived from).
    pub fn lwm(&self) -> Lsn {
        self.acks.lwm()
    }

    /// Operations sent but not yet acknowledged (experiment/test
    /// introspection). A lost reply — or a lost reply *batch* — shows up
    /// here until the resend machinery recovers the acks.
    pub fn outstanding_ops(&self) -> usize {
        self.acks.outstanding()
    }

    /// Wire a DC.
    pub fn register_dc(&self, dc: DcId, link: Arc<dyn DcLink>) {
        self.links.write().insert(dc, link);
    }

    /// Re-install a past failover alias on a rebuilt TC (deployment
    /// rebuild after a TC crash): log records and routes addressed to
    /// deposed primary `old` resolve to promoted DC `new`. Recovery's
    /// log analysis re-derives the same aliases (plus redo floors) from
    /// [`TcLogRecord::Promote`] records.
    pub fn install_promotion(&self, old: DcId, new: DcId) {
        self.aliases.write().insert(old, new);
        self.links.write().remove(&old);
    }

    /// Failover aliases currently installed (deposed id → promoted id).
    /// A deployment rebuilding this TC compares these against its own
    /// failover records to detect promotions recovery re-drove from a
    /// [`TcLogRecord::PromoteIntent`].
    pub fn aliases(&self) -> Vec<(DcId, DcId)> {
        self.aliases.read().iter().map(|(o, n)| (*o, *n)).collect()
    }

    /// The promotion redo floor for `dc`, if one exists: recovery never
    /// replays records below it to that DC.
    pub(crate) fn redo_floor(&self, dc: DcId) -> Option<Lsn> {
        self.redo_floors.read().get(&dc).copied()
    }

    pub(crate) fn raise_redo_floor(&self, dc: DcId, floor: Lsn) {
        let mut g = self.redo_floors.write();
        let e = g.entry(dc).or_insert(Lsn(0));
        *e = (*e).max(floor);
    }

    /// Declare where a table lives.
    pub fn register_table(&self, table: TableId, route: TableRoute) {
        self.routes.write().insert(table, route);
    }

    pub(crate) fn route(&self, table: TableId) -> Result<TableRoute, TcError> {
        self.routes
            .read()
            .get(&table)
            .cloned()
            .ok_or(TcError::NoSuchDc(DcId(u16::MAX)))
    }

    /// Resolve a (possibly deposed) DC id through the failover alias
    /// chain to the id currently serving its partition.
    pub fn resolve_dc(&self, dc: DcId) -> DcId {
        let aliases = self.aliases.read();
        let mut cur = dc;
        for _ in 0..=aliases.len() {
            match aliases.get(&cur) {
                Some(next) => cur = *next,
                None => break,
            }
        }
        cur
    }

    pub(crate) fn link(&self, dc: DcId) -> Result<Arc<dyn DcLink>, TcError> {
        let resolved = self.resolve_dc(dc);
        self.links
            .read()
            .get(&resolved)
            .cloned()
            .ok_or(TcError::NoSuchDc(dc))
    }

    pub(crate) fn ensure_available(&self) -> Result<(), TcError> {
        if self.available.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(TcError::Unavailable(self.id))
        }
    }

    pub(crate) fn set_available(&self, v: bool) {
        self.available.store(v, Ordering::Release);
    }

    // ------------------------------------------------------------------
    // Message delivery (transports call this)
    // ------------------------------------------------------------------

    /// Deliver one DC→TC message.
    pub fn deliver(&self, msg: DcToTc) {
        match msg {
            DcToTc::Reply { req, result, .. } => {
                // Commit-path acks only (see the DC apply span): body
                // operations' replies are not part of the commit tree.
                let _s = obs::stage::in_commit_scope().then(|| obs::span("tc.ack"));
                if let Some(lsn) = req.lsn() {
                    self.acks.acked(lsn);
                }
                self.fulfill(req, result);
            }
            DcToTc::ReplyBatch { replies, .. } => {
                // Unpack a coalesced ack batch: the ack frontier (and so
                // the low-water mark) advances once for the whole batch,
                // and the pending-slot map is consulted once per batch
                // instead of once per reply.
                TcStats::bump(&self.stats.reply_batches);
                self.acks
                    .acked_many(replies.iter().filter_map(|(req, _)| req.lsn()));
                let slots: Vec<_> = {
                    let pending = self.pending.lock();
                    replies
                        .into_iter()
                        .map(|(req, result)| (pending.get(&req).cloned(), result))
                        .collect()
                };
                for (slot, result) in slots {
                    match slot {
                        Some(slot) => {
                            let mut v = slot.val.lock();
                            if v.is_none() {
                                *v = Some(result);
                                slot.cv.notify_all();
                            } else {
                                TcStats::bump(&self.stats.stale_replies);
                            }
                        }
                        None => TcStats::bump(&self.stats.stale_replies),
                    }
                }
            }
            DcToTc::CheckpointDone { dc, rssp, .. } => {
                if let Some(slot) = self.ckpt_waiters.lock().get(&dc).cloned() {
                    *slot.val.lock() = Some(rssp);
                    slot.cv.notify_all();
                }
            }
            DcToTc::RsspHint { .. } => {
                // Advisory only; a checkpoint will pick it up.
            }
            DcToTc::Crashed { dc } => {
                self.crashed_prompts.lock().push(dc);
            }
            DcToTc::RestartReady { dc, .. } => {
                if let Some(slot) = self.restart_ready.lock().get(&dc).cloned() {
                    *slot.val.lock() = true;
                    slot.cv.notify_all();
                }
            }
            DcToTc::RestartDone { dc, .. } => {
                if let Some(slot) = self.restart_done.lock().get(&dc).cloned() {
                    *slot.val.lock() = true;
                    slot.cv.notify_all();
                }
            }
            DcToTc::ShipAck {
                dc,
                applied,
                durable,
                ..
            } => {
                self.shipper.on_ack(dc, applied, durable);
            }
        }
    }

    /// Hand a reply's outcome to whoever is waiting on `req`.
    fn fulfill(&self, req: RequestId, result: Result<OpResult, DcError>) {
        let slot = self.pending.lock().get(&req).cloned();
        match slot {
            Some(slot) => {
                let mut v = slot.val.lock();
                if v.is_none() {
                    *v = Some(result);
                    slot.cv.notify_all();
                } else {
                    TcStats::bump(&self.stats.stale_replies);
                }
            }
            None => TcStats::bump(&self.stats.stale_replies),
        }
    }

    /// Drain crash prompts (the kernel reacts by driving
    /// [`Tc::recover_dc`] once the DC has rebooted).
    pub fn take_crash_prompts(&self) -> Vec<DcId> {
        std::mem::take(&mut *self.crashed_prompts.lock())
    }

    // ------------------------------------------------------------------
    // Sending with resend/ack (the interaction contract)
    // ------------------------------------------------------------------

    fn gate_wait(&self, dc: DcId) {
        let mut g = self.gated.lock();
        while g.contains(&dc) {
            self.gate_cv.wait(&mut g);
        }
    }

    pub(crate) fn gate(&self, dc: DcId) {
        self.gated.lock().insert(dc);
    }

    pub(crate) fn ungate(&self, dc: DcId) {
        self.gated.lock().remove(&dc);
        self.gate_cv.notify_all();
    }

    fn slot_for(&self, req: RequestId) -> Arc<ReplySlot> {
        self.pending
            .lock()
            .entry(req)
            .or_insert_with(|| {
                Arc::new(ReplySlot {
                    val: Mutex::new(None),
                    cv: Condvar::new(),
                })
            })
            .clone()
    }

    fn drop_slot(&self, req: RequestId, slot: &Arc<ReplySlot>) {
        let mut p = self.pending.lock();
        if let Some(cur) = p.get(&req) {
            if Arc::ptr_eq(cur, slot) {
                p.remove(&req);
            }
        }
    }

    /// Send an operation and wait for its reply, resending on timeout
    /// (exactly-once overall thanks to DC idempotence). `bypass_gate` is
    /// used by recovery, which must talk to a gated DC.
    pub(crate) fn send_op(
        &self,
        dc: DcId,
        req: RequestId,
        op: &LogicalOp,
        bypass_gate: bool,
    ) -> Result<Result<OpResult, DcError>, TcError> {
        let slot = self.slot_for(req);
        let mut attempts: u32 = 0;
        loop {
            if !bypass_gate {
                self.gate_wait(dc);
            }
            // Re-resolve the link on every attempt: a failover promotion
            // mid-resend re-points the deposed primary's id at the
            // promoted replica, and in-flight operations must follow.
            let link = self.link(dc)?;
            link.send(TcToDc::Perform {
                tc: self.id,
                req,
                op: op.clone(),
            });
            if attempts == 0 {
                if req.lsn().is_some() {
                    TcStats::bump(&self.stats.ops_sent);
                } else {
                    TcStats::bump(&self.stats.reads_sent);
                }
            } else {
                TcStats::bump(&self.stats.resends);
            }
            let deadline = std::time::Instant::now() + self.cfg.resend_interval;
            let mut v = slot.val.lock();
            while v.is_none() {
                if slot.cv.wait_until(&mut v, deadline).timed_out() {
                    break;
                }
            }
            if let Some(result) = v.take() {
                drop(v);
                self.drop_slot(req, &slot);
                return Ok(result);
            }
            drop(v);
            attempts += 1;
            if attempts > self.cfg.max_resends {
                self.drop_slot(req, &slot);
                return Err(TcError::DcUnreachable(dc));
            }
        }
    }

    /// Broadcast a control message to every registered DC.
    pub(crate) fn broadcast(&self, make: impl Fn(TcId) -> TcToDc) {
        let links = self.links.read();
        for link in links.values() {
            link.send(make(self.id));
        }
    }

    /// Force everything appended so far. With group commit on, even
    /// control-path forces (abort, checkpoint, background, recovery) go
    /// through the group path with no gather window: they piggyback on
    /// any in-flight flush instead of stalling the log — and every
    /// appender with it — for the device latency.
    pub(crate) fn force_log(&self) -> Lsn {
        match &self.cfg.group_commit {
            None => self.log.force(),
            Some(_) => {
                Lsn(self
                    .log
                    .store()
                    .group_force(self.log.last().0, GatherWindow::none(), 1))
            }
        }
    }

    /// Force the log and publish the new EOSL + LWM to all DCs (this is
    /// how write-ahead logging and abLSN pruning work across the
    /// component boundary).
    pub fn force_and_publish(&self) {
        let eosl = self.force_log();
        let mut published = self.published.lock();
        self.publish_locked(&mut published, eosl);
    }

    /// Make the commit record at `lsn` durable and publish the frontier:
    /// a solo force + broadcast when group commit is off, otherwise the
    /// log's group-force path (lead or piggyback) with one EOSL/LWM
    /// publication per flush instead of per committer.
    pub(crate) fn force_commit(&self, lsn: Lsn) {
        match self.cfg.group_commit.clone() {
            None => self.force_and_publish(),
            Some(gc) => {
                let eosl = Lsn(self
                    .log
                    .store()
                    .group_force(lsn.0, gc.window, gc.max_waiters));
                // Coalesce: only the first committer per flush publishes.
                let mut published = self.published.lock();
                if *published >= eosl {
                    TcStats::bump(&self.stats.publishes_coalesced);
                    return;
                }
                self.publish_locked(&mut published, eosl);
            }
        }
    }

    /// Broadcast the EOSL/LWM frontier. The caller holds the `published`
    /// lock, which serializes broadcasts so the frontier reaches every
    /// DC monotonically — and a frontier that raced past us is never
    /// un-published: we always broadcast the furthest known stable end.
    fn publish_locked(&self, published: &mut Lsn, eosl: Lsn) {
        let eosl = (*published).max(eosl);
        *published = eosl;
        let mut lwm = self.acks.lwm().min(eosl);
        // Hold the GC floor at the oldest open pinned snapshot: version
        // chains at or above the published LWM are exact, so a pin must
        // never sink below it.
        if let Some(oldest) = self.snapshot_pins.lock().keys().next() {
            lwm = lwm.min(Lsn(*oldest));
        }
        self.broadcast(|tc| TcToDc::EndOfStableLog { tc, eosl });
        self.broadcast(|tc| TcToDc::LowWaterMark { tc, lwm });
        self.appends_since_force.store(0, Ordering::Relaxed);
    }

    fn maybe_background_force(&self) {
        let n = self.appends_since_force.fetch_add(1, Ordering::Relaxed) + 1;
        if n as usize >= self.cfg.force_every {
            self.force_and_publish();
        }
    }

    // ------------------------------------------------------------------
    // Transaction API
    // ------------------------------------------------------------------

    /// Start a transaction.
    pub fn begin(&self) -> Result<TxnId, TcError> {
        self.ensure_available()?;
        let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let lsn = self.log_bookkeeping(TcLogRecord::Begin { txn });
        self.maybe_background_force();
        let st = TxnState {
            id: txn,
            first_lsn: lsn,
            undo: Vec::new(),
            touched: HashSet::new(),
            cache: HashMap::new(),
            promotes: Vec::new(),
            writes: HashMap::new(),
            snapshot: None,
            remotes: HashSet::new(),
            part_of: None,
            prepared: false,
            shard_points: HashSet::new(),
            span: obs::open_span("tc.txn", "txn", txn.0),
            lock_wait_ns: 0,
        };
        self.txns.lock().insert(txn, Arc::new(Mutex::new(st)));
        Ok(txn)
    }

    pub(crate) fn txn_state(&self, txn: TxnId) -> Result<Arc<Mutex<TxnState>>, TcError> {
        self.txns
            .lock()
            .get(&txn)
            .cloned()
            .ok_or(TcError::NotActive(txn))
    }

    pub(crate) fn token(txn: TxnId) -> LockToken {
        LockToken(txn.0)
    }

    pub(crate) fn lock_or_abort(
        &self,
        txn: TxnId,
        name: LockName,
        mode: LockMode,
    ) -> Result<(), TcError> {
        match self
            .locks
            .lock_waited(Self::token(txn), name, mode, self.cfg.lock_timeout)
        {
            Ok(waited_ns) => {
                if waited_ns > 0 {
                    if let Ok(st) = self.txn_state(txn) {
                        st.lock().lock_wait_ns += waited_ns;
                    }
                }
                Ok(())
            }
            Err(LockError::Deadlock) => {
                TcStats::bump(&self.stats.deadlock_aborts);
                self.rollback(txn)?;
                Err(TcError::Deadlock(txn))
            }
            Err(LockError::Timeout) => {
                self.rollback(txn)?;
                Err(TcError::LockTimeout(txn))
            }
        }
    }

    /// Edge lock name for key-range (phantom) protection: the next
    /// existing key, or the end-of-table sentinel.
    fn edge_lock(table: TableId, next_key: Option<&Key>) -> LockName {
        match next_key {
            Some(k) => LockName::Record(table, k.clone()),
            None => LockName::Range(table, u32::MAX),
        }
    }

    /// Known value of a key under lock (from the transaction's read
    /// cache, or fetched now — undo information for updates/deletes).
    fn known_value(
        &self,
        st: &Arc<Mutex<TxnState>>,
        dc: DcId,
        table: TableId,
        key: &Key,
    ) -> Result<Option<Vec<u8>>, TcError> {
        if let Some(v) = st.lock().cache.get(&(table, key.clone())) {
            return Ok(v.clone());
        }
        let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
        let op = LogicalOp::Read {
            table,
            key: key.clone(),
            flavor: ReadFlavor::Latest,
        };
        let value = match self.send_op(dc, req, &op, false)? {
            Ok(OpResult::Value(v)) => v,
            Ok(other) => panic!("read returned {other:?}"),
            Err(e) => return Err(TcError::OperationFailed(st.lock().id, e)),
        };
        st.lock().cache.insert((table, key.clone()), value.clone());
        Ok(value)
    }

    pub(crate) fn mutate(&self, txn: TxnId, op: LogicalOp) -> Result<(), TcError> {
        self.ensure_available()?;
        let st = self.txn_state(txn)?;
        let table = op.table();
        let key = op.point_key().expect("point mutation").clone();
        let point = unbundled_core::route_point(&key);
        // Sharded transaction service: a key owned by another TC shard is
        // forwarded to it and executed there as a participant branch of
        // this transaction (locked, logged and sent by the owner — only
        // the owning shard ever locks a key).
        loop {
            if let Some(owner) = self.shard_owner(&key) {
                if st.lock().part_of.is_some() {
                    // A participant branch never chain-forwards: the map
                    // moved under the coordinator's forward. Reject without
                    // touching the branch; the coordinator re-routes.
                    return Err(TcError::StaleShardMap {
                        tc: self.id,
                        epoch: self.map_epoch(),
                    });
                }
                return self.forward_mutate(txn, &st, owner, op);
            }
            // Elastic rebalance: block (bounded) behind a fence over a
            // moving range this op would enter; records the op's shard
            // point so the drain sees this transaction. A `false` pass
            // means the op slept on a fence that resolved — the range
            // may have moved away while it slept, so re-resolve the
            // owner under the republished map instead of executing
            // under lapsed authority.
            if self.fence_pass(txn, &st, point)? {
                break;
            }
        }
        // Locally owned mutation (forwards were handled above, and a
        // forwarded op re-enters `mutate` at its owner): feed the key
        // sketch the rebalance policy splits by. Traffic-weighted on
        // purpose — every executed mutation is one sample.
        if self.cfg.key_sketch {
            self.stats.keys.record(point);
        }
        let dc = self.route(table)?.dc_for(&key);

        // --- Locking, always before the LSN is drawn (OPSR).
        self.lock_or_abort(txn, LockName::Table(table), LockMode::IX)?;
        match (&self.cfg.scan_protocol, &op) {
            (ScanProtocol::StaticRanges(p), _) => {
                // Static range locks: every mutation intends-to-write its
                // partition; scans take S on partitions, blocking writers.
                let part = p.partition_of(&key);
                self.lock_or_abort(txn, LockName::Range(table, part), LockMode::IX)?;
            }
            (ScanProtocol::FetchAhead { .. }, LogicalOp::Insert { .. })
            | (ScanProtocol::FetchAhead { .. }, LogicalOp::VersionedWrite { .. }) => {
                // Next-key (instant) lock: serializes against scans that
                // locked the edge of the gap this insert lands in.
                let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
                let probe = LogicalOp::ProbeKeys {
                    table,
                    from: key.successor(),
                    count: 1,
                };
                let next = match self.send_op(dc, req, &probe, false)? {
                    Ok(OpResult::Keys(keys)) => keys.into_iter().next(),
                    Ok(other) => panic!("probe returned {other:?}"),
                    Err(e) => return Err(TcError::OperationFailed(txn, e)),
                };
                let name = Self::edge_lock(table, next.as_ref());
                self.lock_or_abort(txn, name.clone(), LockMode::X)?;
                self.locks.unlock(Self::token(txn), &name); // instant duration
            }
            _ => {}
        }
        self.lock_or_abort(txn, LockName::Record(table, key.clone()), LockMode::X)?;

        // --- Undo information (before logging — see `op.rs` docs).
        let undo = match &op {
            LogicalOp::Insert { .. } | LogicalOp::VersionedWrite { .. } => op.inverse(None),
            LogicalOp::Update { .. } | LogicalOp::Delete { .. } => {
                match self.known_value(&st, dc, table, &key)? {
                    Some(prior) => op.inverse(Some(&prior)),
                    None => None, // record absent: the op will fail deterministically
                }
            }
            _ => None,
        };

        // --- Log, then send.
        let lsn = self.log_op_record(TcLogRecord::Op {
            txn,
            dc,
            op: op.clone(),
            undo: undo.clone(),
        });
        self.maybe_background_force();
        match self.send_op(dc, RequestId::Op(lsn), &op, false)? {
            Ok(_) => {
                let mut g = st.lock();
                if let Some(inv) = undo {
                    g.undo.push((dc, inv));
                }
                g.touched.insert(dc);
                // Maintain the read cache for later undo info.
                let cached: Option<Vec<u8>> = match &op {
                    LogicalOp::Insert { value, .. }
                    | LogicalOp::Update { value, .. }
                    | LogicalOp::VersionedWrite { value, .. } => Some(value.clone()),
                    LogicalOp::Delete { .. } => None,
                    _ => None,
                };
                g.cache.insert((table, key.clone()), cached);
                g.writes.insert((dc, table, key.clone()), lsn);
                if matches!(op, LogicalOp::VersionedWrite { .. }) {
                    g.promotes.push((dc, table, key));
                }
                Ok(())
            }
            Err(e) => {
                drop(st);
                self.rollback(txn)?;
                Err(TcError::OperationFailed(txn, e))
            }
        }
    }

    /// Insert a record.
    pub fn insert(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        value: Vec<u8>,
    ) -> Result<(), TcError> {
        self.mutate(txn, LogicalOp::Insert { table, key, value })
    }

    /// Replace a record's payload.
    pub fn update(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        value: Vec<u8>,
    ) -> Result<(), TcError> {
        self.mutate(txn, LogicalOp::Update { table, key, value })
    }

    /// Delete a record.
    pub fn delete(&self, txn: TxnId, table: TableId, key: Key) -> Result<(), TcError> {
        self.mutate(txn, LogicalOp::Delete { table, key })
    }

    /// Versioned insert-or-update on a versioned table (cross-TC
    /// read-committed sharing, Section 6.2.2). Promoted on commit,
    /// reverted on abort.
    pub fn versioned_write(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        value: Vec<u8>,
    ) -> Result<(), TcError> {
        self.mutate(txn, LogicalOp::VersionedWrite { table, key, value })
    }

    /// Transactional point read at an explicit [`ReadConsistency`] —
    /// the single read surface of the TC. The caller states the
    /// guarantee it needs; primary-vs-replica and locked-vs-versioned
    /// routing is TC policy:
    ///
    /// * [`ReadConsistency::Locking`] — serializable S-lock read on the
    ///   primary (blocks on and is blocked by writers).
    /// * [`ReadConsistency::Snapshot`] — lock-free MVCC read on the
    ///   primary at the resolved snapshot LSN ([`SnapshotSpec::Pinned`]
    ///   pins the transaction's snapshot at first use). Under a shard
    ///   map, a key owned by another TC shard is served at *that*
    ///   shard's stable position (LSN spaces are per-shard, so a pinned
    ///   local LSN is meaningless there).
    /// * [`ReadConsistency::BoundedLag`] / [`ReadConsistency::AtLeast`]
    ///   — replica read when one covers the required frontier, else a
    ///   lock-free snapshot read on the primary at the stable LSN
    ///   (never an S lock: a contended fallback must not block behind
    ///   writers).
    pub fn read(
        &self,
        txn: TxnId,
        table: TableId,
        key: Key,
        consistency: ReadConsistency,
    ) -> Result<Option<Vec<u8>>, TcError> {
        self.ensure_available()?;
        let st = self.txn_state(txn)?;
        match consistency {
            ReadConsistency::Locking => self.read_locking(txn, &st, table, key),
            ReadConsistency::Snapshot(spec) => {
                if let Some(owner) = self.shard_owner(&key) {
                    let peer = self.peer_tc(owner).ok_or(TcError::NoSuchTc(owner))?;
                    let at = peer.log.stable();
                    return peer.snapshot_read_at(table, key, at);
                }
                let at = self.resolve_snapshot(&st, spec);
                self.snapshot_read_at(table, key, at)
            }
            ReadConsistency::BoundedLag(lag) => {
                let required = Lsn(self.log.stable().0.saturating_sub(lag));
                self.replica_or_snapshot_read(table, key, required)
            }
            ReadConsistency::AtLeast(l) => self.replica_or_snapshot_read(table, key, l),
        }
    }

    /// The serializable locking read path (S record lock, read cache,
    /// cross-shard forwarding).
    fn read_locking(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
        table: TableId,
        key: Key,
    ) -> Result<Option<Vec<u8>>, TcError> {
        loop {
            if let Some(owner) = self.shard_owner(&key) {
                if st.lock().part_of.is_some() {
                    return Err(TcError::StaleShardMap {
                        tc: self.id,
                        epoch: self.map_epoch(),
                    });
                }
                return self.forward_read(txn, st, owner, table, key);
            }
            // See `mutate`: a false pass re-resolves the owner after a
            // fence this op slept on resolved (the range may have moved).
            if self.fence_pass(txn, st, unbundled_core::route_point(&key))? {
                break;
            }
        }
        let dc = self.route(table)?.dc_for(&key);
        self.lock_or_abort(txn, LockName::Table(table), LockMode::IS)?;
        self.lock_or_abort(txn, LockName::Record(table, key.clone()), LockMode::S)?;
        TcStats::bump(&self.stats.lock_reads);
        self.known_value(st, dc, table, &key)
    }

    /// Resolve which LSN a snapshot read observes; `Pinned` fixes the
    /// transaction's snapshot on first use.
    fn resolve_snapshot(&self, st: &Arc<Mutex<TxnState>>, spec: SnapshotSpec) -> Lsn {
        match spec {
            SnapshotSpec::At(l) => l,
            SnapshotSpec::Fresh => self.log.stable(),
            SnapshotSpec::Pinned => {
                let mut g = st.lock();
                match g.snapshot {
                    Some(l) => l,
                    None => {
                        let l = self.log.stable();
                        g.snapshot = Some(l);
                        *self.snapshot_pins.lock().entry(l.0).or_insert(0) += 1;
                        l
                    }
                }
            }
        }
    }

    /// Lock-free MVCC snapshot read at an explicit commit-LSN bound.
    pub(crate) fn snapshot_read_at(
        &self,
        table: TableId,
        key: Key,
        at: Lsn,
    ) -> Result<Option<Vec<u8>>, TcError> {
        TcStats::bump(&self.stats.snapshot_reads);
        self.unlocked_read(table, key, ReadFlavor::Snapshot(at))
    }

    /// Lock-free read of *committed* data via versioning (Section 6.2.2:
    /// "Readers are never blocked"). Usable from any TC sharing the DC.
    pub fn read_committed(&self, table: TableId, key: Key) -> Result<Option<Vec<u8>>, TcError> {
        self.unlocked_read(table, key, ReadFlavor::Committed)
    }

    /// Lock-free dirty read (Section 6.2.1): sees uncommitted but always
    /// operation-atomic ("well formed") data.
    pub fn read_dirty(&self, table: TableId, key: Key) -> Result<Option<Vec<u8>>, TcError> {
        self.unlocked_read(table, key, ReadFlavor::Latest)
    }

    fn unlocked_read(
        &self,
        table: TableId,
        key: Key,
        flavor: ReadFlavor,
    ) -> Result<Option<Vec<u8>>, TcError> {
        self.ensure_available()?;
        let dc = self.route(table)?.dc_for(&key);
        let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
        let op = LogicalOp::Read { table, key, flavor };
        match self.send_op(dc, req, &op, false)? {
            Ok(OpResult::Value(v)) => Ok(v),
            Ok(other) => panic!("read returned {other:?}"),
            Err(e) => Err(TcError::OperationFailed(TxnId(0), e)),
        }
    }

    /// Lock-free committed range scan (used by reader TCs à la Figure 2's
    /// TC3; `flavor` picks dirty vs read-committed).
    pub fn scan_unlocked(
        &self,
        table: TableId,
        low: Key,
        high: Option<Key>,
        limit: Option<usize>,
        flavor: ReadFlavor,
    ) -> Result<Vec<(Key, Vec<u8>)>, TcError> {
        self.ensure_available()?;
        let route = self.route(table)?;
        let mut out = Vec::new();
        for dc in route.dcs_for_range(&low, high.as_ref()) {
            let remaining = limit.map(|l| l.saturating_sub(out.len()));
            if remaining == Some(0) {
                break;
            }
            let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
            let op = LogicalOp::ScanRange {
                table,
                low: low.clone(),
                high: high.clone(),
                limit: remaining,
                flavor,
            };
            match self.send_op(dc, req, &op, false)? {
                Ok(OpResult::Entries(e)) => out.extend(e),
                Ok(other) => panic!("scan returned {other:?}"),
                Err(e) => return Err(TcError::OperationFailed(TxnId(0), e)),
            }
        }
        Ok(out)
    }

    /// Serializable range scan under the configured Section 3.1
    /// protocol.
    pub fn scan(
        &self,
        txn: TxnId,
        table: TableId,
        low: Key,
        high: Option<Key>,
        limit: Option<usize>,
    ) -> Result<Vec<(Key, Vec<u8>)>, TcError> {
        self.ensure_available()?;
        self.txn_state(txn)?;
        self.lock_or_abort(txn, LockName::Table(table), LockMode::IS)?;
        match self.cfg.scan_protocol.clone() {
            ScanProtocol::StaticRanges(p) => {
                // Lock every partition the range touches, then scan.
                for part in p.partitions_overlapping(&low, high.as_ref()) {
                    self.lock_or_abort(txn, LockName::Range(table, part), LockMode::S)?;
                }
                self.scan_locked_range(txn, table, &low, high.as_ref(), limit)
            }
            ScanProtocol::FetchAhead { batch } => {
                self.scan_fetch_ahead(txn, table, &low, high.as_ref(), limit, batch)
            }
        }
    }

    fn scan_locked_range(
        &self,
        _txn: TxnId,
        table: TableId,
        low: &Key,
        high: Option<&Key>,
        limit: Option<usize>,
    ) -> Result<Vec<(Key, Vec<u8>)>, TcError> {
        let route = self.route(table)?;
        let mut out = Vec::new();
        for dc in route.dcs_for_range(low, high) {
            let remaining = limit.map(|l| l.saturating_sub(out.len()));
            if remaining == Some(0) {
                break;
            }
            let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
            let op = LogicalOp::ScanRange {
                table,
                low: low.clone(),
                high: high.cloned(),
                limit: remaining,
                flavor: ReadFlavor::Latest,
            };
            match self.send_op(dc, req, &op, false)? {
                Ok(OpResult::Entries(e)) => out.extend(e),
                Ok(other) => panic!("scan returned {other:?}"),
                Err(e) => return Err(TcError::OperationFailed(TxnId(0), e)),
            }
        }
        Ok(out)
    }

    /// The fetch-ahead protocol (Section 3.1): probe keys speculatively,
    /// lock them (plus the range edge), verify by re-probing, then read.
    fn scan_fetch_ahead(
        &self,
        txn: TxnId,
        table: TableId,
        low: &Key,
        high: Option<&Key>,
        limit: Option<usize>,
        batch: usize,
    ) -> Result<Vec<(Key, Vec<u8>)>, TcError> {
        let route = self.route(table)?;
        let mut out: Vec<(Key, Vec<u8>)> = Vec::new();
        'dcs: for dc in route.dcs_for_range(low, high) {
            let mut from = low.clone();
            loop {
                if limit.map(|l| out.len() >= l).unwrap_or(false) {
                    break 'dcs;
                }
                // Probe + lock until stable (bounded retries).
                let mut retries = 0;
                let keys = loop {
                    let keys = self.probe(dc, table, &from, batch)?;
                    for k in &keys {
                        let in_range = high.map(|h| k < h).unwrap_or(true);
                        let name = if in_range {
                            LockName::Record(table, k.clone())
                        } else {
                            // First key at/after the bound is the edge.
                            Self::edge_lock(table, Some(k))
                        };
                        self.lock_or_abort(txn, name, LockMode::S)?;
                        if !in_range {
                            break;
                        }
                    }
                    if keys.len() < batch {
                        // End of table: lock the EOT edge.
                        self.lock_or_abort(txn, Self::edge_lock(table, None), LockMode::S)?;
                    }
                    // Verify the speculation: the key set must not have
                    // changed between probe and locks.
                    let again = self.probe(dc, table, &from, batch)?;
                    if again == keys {
                        break keys;
                    }
                    retries += 1;
                    if retries > 16 {
                        self.rollback(txn)?;
                        return Err(TcError::LockTimeout(txn));
                    }
                };
                let in_range: Vec<&Key> = keys
                    .iter()
                    .filter(|k| **k >= from && high.map(|h| *k < h).unwrap_or(true))
                    .collect();
                if !in_range.is_empty() {
                    // Read the locked collection in one request.
                    let upper = in_range.last().unwrap().successor();
                    let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
                    let op = LogicalOp::ScanRange {
                        table,
                        low: from.clone(),
                        high: Some(upper.clone()),
                        limit: None,
                        flavor: ReadFlavor::Latest,
                    };
                    match self.send_op(dc, req, &op, false)? {
                        Ok(OpResult::Entries(e)) => out.extend(e),
                        Ok(other) => panic!("scan returned {other:?}"),
                        Err(e) => return Err(TcError::OperationFailed(txn, e)),
                    }
                    from = upper;
                }
                if keys.len() < batch || keys.iter().any(|k| high.map(|h| k >= h).unwrap_or(false))
                {
                    break; // exhausted this DC's range
                }
            }
        }
        if let Some(l) = limit {
            out.truncate(l);
        }
        Ok(out)
    }

    fn probe(
        &self,
        dc: DcId,
        table: TableId,
        from: &Key,
        count: usize,
    ) -> Result<Vec<Key>, TcError> {
        let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
        let op = LogicalOp::ProbeKeys {
            table,
            from: from.clone(),
            count,
        };
        match self.send_op(dc, req, &op, false)? {
            Ok(OpResult::Keys(keys)) => Ok(keys),
            Ok(other) => panic!("probe returned {other:?}"),
            Err(e) => Err(TcError::OperationFailed(TxnId(0), e)),
        }
    }

    // ------------------------------------------------------------------
    // Commit / abort
    // ------------------------------------------------------------------

    /// Commit: force the commit record (durability) — solo or via group
    /// commit — then run post-commit version promotions, then release
    /// locks. A transaction with branches at other TC shards goes
    /// through two-phase commit over the shards' redo logs instead (the
    /// forced [`TcLogRecord::CommitDecision`] is its commit point).
    pub fn commit(&self, txn: TxnId) -> Result<(), TcError> {
        self.ensure_available()?;
        let st = self.txn_state(txn)?;
        let (txn_span, cross) = {
            let g = st.lock();
            (g.span, !g.remotes.is_empty())
        };
        // Parent everything the commit does under the transaction's
        // span, and collect the per-stage time lower layers measure
        // (gather/force in the log, apply at the DCs) while this thread
        // drives the commit.
        let _ctx = obs::ctx(txn_span);
        let _span = obs::span1("tc.commit", "txn", txn.0);
        let scope = obs::stage::commit_scope();
        let started = std::time::Instant::now();
        let result = if cross {
            self.commit_cross(txn)
        } else {
            self.commit_local(txn, &st)
        };
        if result.is_ok() {
            let total_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let stages = scope.totals();
            // The 2PC residual is coordination time not already
            // attributed to gather/force/apply (prepare and decision
            // forces land in those stages via the inline transport);
            // local commits record a zero so every histogram sees the
            // same commit population and stage p50s sum meaningfully.
            let twopc_ns = if cross {
                total_ns
                    .saturating_sub(stages.gather_ns)
                    .saturating_sub(stages.force_ns)
                    .saturating_sub(stages.apply_ns)
            } else {
                0
            };
            self.stats.commit_ns.record_ns(total_ns);
            self.stats
                .stage_lock_wait_ns
                .record_ns(st.lock().lock_wait_ns);
            self.stats.stage_gather_wait_ns.record_ns(stages.gather_ns);
            self.stats.stage_force_ns.record_ns(stages.force_ns);
            self.stats.stage_dc_apply_ns.record_ns(stages.apply_ns);
            self.stats.stage_twopc_ns.record_ns(twopc_ns);
        }
        result
    }

    /// Single-shard commit (the classical path).
    fn commit_local(&self, txn: TxnId, st: &Arc<Mutex<TxnState>>) -> Result<(), TcError> {
        // Read-only fast path: nothing was written, so there is nothing
        // to make durable. The commit record is appended for log
        // hygiene but NOT forced — losing it across a crash presumes
        // the transaction aborted, which for a read-only transaction is
        // indistinguishable from commit. Snapshot readers therefore pay
        // neither locks nor a log force.
        let read_only = {
            let g = st.lock();
            g.undo.is_empty() && g.writes.is_empty() && g.promotes.is_empty()
        };
        if read_only {
            self.log_bookkeeping(TcLogRecord::Commit { txn });
            self.locks.unlock_all(Self::token(txn));
            self.release_pin(st);
            self.txns.lock().remove(&txn);
            obs::close_span(st.lock().span, "tc.txn");
            TcStats::bump(&self.stats.commits);
            return Ok(());
        }
        let commit_lsn = self.log_bookkeeping(TcLogRecord::Commit { txn });
        // MVCC: stamp records are logged *before* the force so one flush
        // covers the commit record and the stamps, and sent *after* it
        // (write-ahead). Delivery is synchronous and happens while the
        // transaction still holds its X locks, so once `commit` returns,
        // any snapshot at or above the stable LSN observes this
        // transaction — and no snapshot can observe it partially.
        let stamps = self.log_stamps(txn, st, commit_lsn);
        self.force_commit(self.log.last());
        self.send_stamps(&stamps)?;
        // Eliminate before-versions (Section 6.2.2) — logged redo-only so
        // recovery finishes the job if we crash mid-way. Single-shard
        // transactions need no 2PC: once the commit record is stable the
        // transaction IS committed.
        self.finish_commit_local(txn, st)
    }

    /// Log one redo-only [`LogicalOp::StampCommit`] per key this
    /// transaction wrote (last write per key — displaced intermediates
    /// are never stamped), tagging the DC-side versions with the
    /// transaction's commit LSN. Returns the records for the
    /// post-force send.
    pub(crate) fn log_stamps(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
        commit: Lsn,
    ) -> Vec<(DcId, Lsn, LogicalOp)> {
        let mut writes: Vec<((DcId, TableId, Key), Lsn)> = {
            let mut g = st.lock();
            std::mem::take(&mut g.writes).into_iter().collect()
        };
        writes.sort_by_key(|&(_, l)| l);
        let mut out = Vec::with_capacity(writes.len());
        for ((dc, table, key), op_lsn) in writes {
            let op = LogicalOp::StampCommit {
                table,
                key,
                op: op_lsn,
                commit,
            };
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn,
                dc,
                op: op.clone(),
            });
            out.push((dc, l, op));
        }
        out
    }

    /// Deliver the stamp records logged by [`Tc::log_stamps`]. Runs
    /// under the committing transaction's locks; a stamp whose record
    /// was meanwhile truncated away at the DC is a deterministic no-op
    /// there.
    pub(crate) fn send_stamps(&self, stamps: &[(DcId, Lsn, LogicalOp)]) -> Result<(), TcError> {
        for (dc, l, op) in stamps {
            TcStats::bump(&self.stats.stamps_sent);
            let _ = self.send_op(*dc, RequestId::Op(*l), op, false)?;
        }
        Ok(())
    }

    /// Post-commit-point work shared by single-shard commit, cross-TC
    /// coordinator commit and participant decision-apply: version
    /// promotions, lock release, state removal.
    pub(crate) fn finish_commit_local(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
    ) -> Result<(), TcError> {
        let promotes = std::mem::take(&mut st.lock().promotes);
        let had_promotes = !promotes.is_empty();
        for (dc, table, key) in promotes {
            let op = LogicalOp::PromoteVersion { table, key };
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn,
                dc,
                op: op.clone(),
            });
            let _ = self.send_op(dc, RequestId::Op(l), &op, false)?;
        }
        if had_promotes {
            // Make the promotions durable; recovery also re-derives them
            // from the committed VersionedWrite records, closing the
            // remaining window.
            self.force_commit(self.log.last());
        }
        self.locks.unlock_all(Self::token(txn));
        self.release_pin(st);
        self.txns.lock().remove(&txn);
        obs::close_span(st.lock().span, "tc.txn");
        TcStats::bump(&self.stats.commits);
        Ok(())
    }

    /// Drop a transaction's pinned-snapshot registration (if any) so the
    /// published low-water mark may advance past it.
    pub(crate) fn release_pin(&self, st: &Arc<Mutex<TxnState>>) {
        let pin = st.lock().snapshot.take();
        if let Some(p) = pin {
            let mut g = self.snapshot_pins.lock();
            if let Some(n) = g.get_mut(&p.0) {
                *n -= 1;
                if *n == 0 {
                    g.remove(&p.0);
                }
            }
        }
    }

    /// Abort: roll back via inverse operations, then release locks.
    pub fn abort(&self, txn: TxnId) -> Result<(), TcError> {
        self.ensure_available()?;
        self.rollback(txn)
    }

    /// Roll back `txn`. A cross-TC coordinator additionally aborts every
    /// participant branch; a participant branch resolves with a
    /// [`TcLogRecord::ParticipantAbort`] instead of a plain Abort so
    /// recovery knows its in-doubt window is closed.
    pub(crate) fn rollback(&self, txn: TxnId) -> Result<(), TcError> {
        let st = match self.txns.lock().remove(&txn) {
            Some(st) => st,
            None => return Err(TcError::NotActive(txn)),
        };
        self.release_pin(&st);
        let part_of = st.lock().part_of;
        if let Some(key) = part_of {
            self.participants.lock().remove(&key);
        }
        // Coordinator role: tell every participant shard to abort its
        // branch before (or regardless of) the local undo — presumed
        // abort, so a participant that never hears this still resolves
        // correctly by asking.
        let remotes: Vec<TcId> = {
            let mut g = st.lock();
            g.promotes.clear();
            std::mem::take(&mut g.remotes).into_iter().collect()
        };
        for r in remotes {
            if let Some(peer) = self.peer_tc(r) {
                peer.decide_participant(self.id, txn, false);
            }
        }
        // Inverse operations in reverse chronological order
        // (Section 4.1.1(2b)), logged redo-only like compensation
        // records so recovery repeats them but never undoes them.
        let undo: Vec<(DcId, LogicalOp)> = {
            let mut g = st.lock();
            let mut u = std::mem::take(&mut g.undo);
            u.reverse();
            u
        };
        for (dc, inv) in undo {
            let l = self.log_op_record(TcLogRecord::RedoOnly {
                txn,
                dc,
                op: inv.clone(),
            });
            self.maybe_background_force();
            TcStats::bump(&self.stats.undo_ops);
            let _ = self.send_op(dc, RequestId::Op(l), &inv, false)?;
        }
        if part_of.is_some() {
            self.log_bookkeeping(TcLogRecord::ParticipantAbort { txn });
        } else {
            self.log_bookkeeping(TcLogRecord::Abort { txn });
        }
        self.force_and_publish();
        self.locks.unlock_all(Self::token(txn));
        obs::close_span(st.lock().span, "tc.txn");
        TcStats::bump(&self.stats.aborts);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoint (contract termination, Section 4.2)
    // ------------------------------------------------------------------

    /// Advance the redo scan start point: ask every DC to make pages
    /// containing pre-`target` operations stable, record the granted
    /// RSSP, and truncate the log prefix no longer needed for redo *or*
    /// undo. Returns the new RSSP.
    pub fn checkpoint(&self) -> Result<Lsn, TcError> {
        self.ensure_available()?;
        let target = self.log.last().next();
        self.force_and_publish();
        let mut granted = target;
        let dcs: Vec<DcId> = self.links.read().keys().copied().collect();
        for dc in dcs {
            let slot = Arc::new(LsnSlot {
                val: Mutex::new(None),
                cv: Condvar::new(),
            });
            self.ckpt_waiters.lock().insert(dc, slot.clone());
            self.link(dc)?.send(TcToDc::Checkpoint {
                tc: self.id,
                new_rssp: target,
            });
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut v = slot.val.lock();
            while v.is_none() {
                if slot.cv.wait_until(&mut v, deadline).timed_out() {
                    break;
                }
            }
            let dc_granted = v.unwrap_or(Lsn(self.rssp.load(Ordering::Relaxed)));
            drop(v);
            self.ckpt_waiters.lock().remove(&dc);
            granted = granted.min(dc_granted);
        }
        let active: Vec<TxnId> = self.txns.lock().keys().copied().collect();
        let rec = TcLogRecord::Checkpoint {
            rssp: granted,
            active: active.clone(),
        };
        self.log_bookkeeping(rec);
        self.force_log();
        self.rssp.store(granted.0, Ordering::Relaxed);
        // Truncation floor: redo needs ≥ RSSP, undo needs every record of
        // a still-active transaction, and replication needs everything a
        // registered replica has not durably consumed (plus buffered
        // operations of transactions whose outcome is not yet shipped) —
        // a replica that reboots, or a TC that reboots and rebuilds its
        // shipper by re-scanning the log, must find those records.
        let oldest_active = self
            .txns
            .lock()
            .values()
            .map(|st| st.lock().first_lsn)
            .min()
            .unwrap_or(granted);
        let mut keep_from = granted.min(oldest_active);
        if let Some(floor) = self.shipper.replication_floor() {
            keep_from = keep_from.min(floor);
        }
        // Cross-TC: a commit decision not yet acknowledged by every
        // participant must stay readable — an in-doubt participant
        // resolves by re-reading it from this log. (Prepared participant
        // branches are already pinned via oldest_active: they stay in
        // `txns` until the decision arrives.)
        if let Some(floor) = self.twopc_floor() {
            keep_from = keep_from.min(floor);
        }
        if keep_from.0 > 1 {
            self.log.store().truncate_prefix(keep_from.0 - 1);
        }
        TcStats::bump(&self.stats.checkpoints);
        Ok(granted)
    }

    /// Current redo scan start point.
    pub fn rssp(&self) -> Lsn {
        Lsn(self.rssp.load(Ordering::Relaxed))
    }

    // ------------------------------------------------------------------
    // Replication: log shipping, bounded-staleness reads, failover
    // ------------------------------------------------------------------

    /// Register `replica` as a read-only follower of primary `of`,
    /// reachable over `link`. The replica receives committed redo as
    /// [`TcToDc::ShipBatch`] datagrams once [`Tc::ship_now`] (or the
    /// kernel's replication pump) runs. Register replicas before the
    /// first truncating checkpoint — the shipper pins truncation to what
    /// registered replicas still need, but cannot resurrect records
    /// truncated before registration.
    pub fn register_replica(&self, replica: DcId, of: DcId, link: Arc<dyn DcLink>) {
        self.shipper.register(replica, &[of], link);
    }

    /// [`Tc::register_replica`] with an explicit primary lineage (used
    /// when rebuilding a TC that had driven promotions: followers of a
    /// promoted primary replay ops logged against every id in the
    /// chain).
    pub fn register_replica_lineage(&self, replica: DcId, sources: &[DcId], link: Arc<dyn DcLink>) {
        self.shipper.register(replica, sources, link);
    }

    /// Scan newly stable committed redo into the replication stream and
    /// ship every registered replica's backlog (resending unacked slices
    /// whose cursor stalled past the resend interval). Returns the ship
    /// frontier. Cheap no-op without registered replicas.
    pub fn ship_now(&self) -> Lsn {
        if !self.available.load(Ordering::Acquire) {
            return self.log.stable();
        }
        self.shipper.ship(
            self.id,
            self.log.store(),
            self.cfg.resend_interval,
            &self.stats,
        )
    }

    /// True if any replica is registered.
    pub fn has_replicas(&self) -> bool {
        self.shipper.has_replicas()
    }

    /// Per-replica freshness: applied/durable frontiers vs. the ship
    /// frontier (experiment and application introspection).
    pub fn replica_lag(&self) -> Vec<ReplicaLag> {
        self.shipper.lags()
    }

    /// Committed point read with bounded-staleness routing: serve from
    /// any replica of the hosting primary whose applied frontier covers
    /// `required`, rotating across qualifying replicas; stale (or
    /// failed) replicas fall back to a lock-free snapshot read on the
    /// primary at the stable LSN. Replica state contains only
    /// committed, never-rolled-back data by construction (uncommitted
    /// work is withheld from the ship stream), so no staleness setting
    /// can surface dirty data.
    fn replica_or_snapshot_read(
        &self,
        table: TableId,
        key: Key,
        required: Lsn,
    ) -> Result<Option<Vec<u8>>, TcError> {
        let primary = self.route(table)?.dc_for(&key);
        let ticket = self.replica_rr.fetch_add(1, Ordering::Relaxed);
        if let Some((replica, link)) =
            self.shipper
                .pick_replica(self.resolve_dc(primary), required, ticket)
        {
            TcStats::bump(&self.stats.replica_reads);
            let req = RequestId::Read(self.next_read.fetch_add(1, Ordering::Relaxed));
            let op = LogicalOp::Read {
                table,
                key: key.clone(),
                flavor: ReadFlavor::Latest,
            };
            match self.send_via(&link, replica, req, &op) {
                Ok(Ok(OpResult::Value(v))) => return Ok(v),
                Ok(Ok(other)) => panic!("read returned {other:?}"),
                // Replica failed or refused: fall back to the primary.
                Ok(Err(_)) | Err(_) => TcStats::bump(&self.stats.replica_read_fallbacks),
            }
        } else {
            TcStats::bump(&self.stats.replica_read_fallbacks);
        }
        // The primary fallback is a *snapshot* read at the stable LSN:
        // it sees every commit the replica path could have seen, but —
        // unlike the instant S lock this path once took — it never
        // queues behind a writer's X lock.
        self.snapshot_read_at(table, key, self.log.stable())
    }

    /// Send one request over an explicit link (replica reads address DCs
    /// outside the primary `links` registry), waiting with the ordinary
    /// resend machinery.
    fn send_via(
        &self,
        link: &Arc<dyn DcLink>,
        dc: DcId,
        req: RequestId,
        op: &LogicalOp,
    ) -> Result<Result<OpResult, DcError>, TcError> {
        let slot = self.slot_for(req);
        let mut attempts: u32 = 0;
        loop {
            link.send(TcToDc::Perform {
                tc: self.id,
                req,
                op: op.clone(),
            });
            if attempts == 0 {
                TcStats::bump(&self.stats.reads_sent);
            } else {
                TcStats::bump(&self.stats.resends);
            }
            let deadline = std::time::Instant::now() + self.cfg.resend_interval;
            let mut v = slot.val.lock();
            while v.is_none() {
                if slot.cv.wait_until(&mut v, deadline).timed_out() {
                    break;
                }
            }
            if let Some(result) = v.take() {
                drop(v);
                self.drop_slot(req, &slot);
                return Ok(result);
            }
            drop(v);
            attempts += 1;
            if attempts > self.cfg.max_resends {
                self.drop_slot(req, &slot);
                return Err(TcError::DcUnreachable(dc));
            }
        }
    }

    /// Failover: promote read-only replica `new` to writable primary for
    /// deposed primary `old`'s partition.
    ///
    /// 1. **Fence** — `old` is told to reject all future mutations, so a
    ///    deposed primary that comes back cannot diverge.
    /// 2. **Re-point** — `old`'s id aliases to `new`; in-flight resends
    ///    and recovery traffic addressed to the old id reach the
    ///    promoted DC, and surviving replicas of `old` extend their
    ///    lineage to follow `new`.
    /// 3. **Catch up** — the ordinary restart conversation plus logical
    ///    redo replays *every* retained log record of the partition into
    ///    the promoted DC (replication truncation pinning guarantees the
    ///    log still holds whatever any replica lacks); records it
    ///    already applied via shipping are suppressed by the abstract-LSN
    ///    test. Acknowledged commits therefore survive with full
    ///    durability even when the old primary died mid-replication.
    /// 4. **Re-route** — table routes mapping to `old` now map to `new`;
    ///    subsequent operations log and route against the new id.
    pub fn promote_replica(&self, old: DcId, new: DcId) -> Result<(), TcError> {
        self.ensure_available()?;
        let new_link = self
            .shipper
            .replica_link(new)
            .ok_or(TcError::NoSuchDc(new))?;
        TcStats::bump(&self.stats.promotions);
        // Quiesce normal traffic addressed to the deposed primary while
        // links and routes are re-pointed.
        self.gate(old);
        let result = self.promote_inner(old, new, new_link);
        self.ungate(old);
        result
    }

    /// Write-ahead the failover intent and force it. Logged *before* the
    /// fence so a TC crash anywhere mid-promotion no longer loses the
    /// failover: recovery finds the intent without a matching
    /// [`TcLogRecord::Promote`] and re-drives the promotion.
    pub fn promote_write_intent(&self, old: DcId, new: DcId) {
        self.log_bookkeeping(TcLogRecord::PromoteIntent { old, new });
        self.force_log();
    }

    fn promote_inner(
        &self,
        old: DcId,
        new: DcId,
        new_link: Arc<dyn DcLink>,
    ) -> Result<(), TcError> {
        self.promote_write_intent(old, new);
        // Fence first: no write may land at the old primary after the
        // new one starts accepting them. Best effort if old is down —
        // the deployment re-fences a fenced node on reboot.
        if let Ok(old_link) = self.link(old) {
            old_link.send(TcToDc::Fence { tc: self.id });
        }
        // Catch up the *stream* while `new` is still a replica: the ship
        // path covers all resolved history (committed effects applied;
        // rolled-back work correctly absent). Raw log replay of resolved
        // history is forbidden — the replica's abLSN has holes at
        // rolled-back operations, and re-executing one of those against
        // newer state (e.g. a compensation whose first delivery failed)
        // would corrupt the copy.
        let stable = self.log.stable();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let end = self.ship_now();
            match self.shipper.applied_of(new) {
                Some(applied) if applied >= end => break,
                None => break, // unregistered (already promoted?)
                _ => {
                    if std::time::Instant::now() >= deadline {
                        return Err(TcError::DcUnreachable(new));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        // Operations whose outcome the stream does not know yet: stable
        // ops of still-unresolved transactions, plus the volatile log
        // tail. These replay raw, in LSN order — none of them conflicts
        // with shipped state (their transactions still hold the locks).
        let mut raw: Vec<(Lsn, DcId, LogicalOp)> = self.shipper.pending_ops();
        for (seq, rec) in self.log.store().read_all_volatile() {
            if seq <= stable.0 {
                continue;
            }
            match rec {
                TcLogRecord::Op { dc, op, .. } | TcLogRecord::RedoOnly { dc, op, .. } => {
                    raw.push((Lsn(seq), dc, op));
                }
                _ => {}
            }
        }
        raw.sort_by_key(|(l, _, _)| *l);
        // Stop following and re-point: ops addressed to the deposed id
        // reach the promoted replica; surviving replicas of `old` extend
        // their lineage.
        self.shipper.promote(old, new);
        {
            let mut links = self.links.write();
            links.remove(&old);
            links.insert(new, new_link.clone());
        }
        self.aliases.write().insert(old, new);
        // The replica switches to primary mode (mutations accepted) —
        // before the raw redo, which sends mutations.
        new_link.send(TcToDc::Promote { tc: self.id });
        self.begin_restart_with(new, stable)?;
        for (lsn, dc, op) in raw {
            if self.resolve_dc(dc) != new {
                continue;
            }
            TcStats::bump(&self.stats.redo_resends);
            let _ = self.send_op(new, RequestId::Op(lsn), &op, true)?;
        }
        self.end_restart_with(new)?;
        // Make everything the new primary holds *stable*, then raise its
        // redo floor to the granted point: future recoveries replay raw
        // history to this DC only above the floor (below it, the flushed
        // state is the authority). Force the log first so the published
        // EOSL covers even the just-replayed volatile tail — otherwise
        // causality would keep those pages flush-ineligible.
        let eosl = self.force_log();
        let target = eosl.next();
        new_link.send(TcToDc::EndOfStableLog { tc: self.id, eosl });
        let mut floor = Lsn(0);
        for _ in 0..20 {
            let slot = Arc::new(LsnSlot {
                val: Mutex::new(None),
                cv: Condvar::new(),
            });
            self.ckpt_waiters.lock().insert(new, slot.clone());
            new_link.send(TcToDc::Checkpoint {
                tc: self.id,
                new_rssp: target,
            });
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut v = slot.val.lock();
            while v.is_none() {
                if slot.cv.wait_until(&mut v, deadline).timed_out() {
                    break;
                }
            }
            floor = v.unwrap_or(Lsn(0));
            drop(v);
            self.ckpt_waiters.lock().remove(&new);
            if floor >= target {
                break;
            }
        }
        if floor.is_null() {
            return Err(TcError::DcUnreachable(new));
        }
        self.raise_redo_floor(new, floor);
        // Durably record the failover: a recovering TC re-derives the
        // alias and the redo floor from this record.
        self.log_bookkeeping(TcLogRecord::Promote { old, new, floor });
        self.force_log();
        {
            let mut routes = self.routes.write();
            for route in routes.values_mut() {
                route.replace_dc(old, new);
            }
        }
        self.force_and_publish();
        Ok(())
    }

    pub(crate) fn bump_txn_counter_to(&self, floor: u64) {
        self.next_txn.fetch_max(floor, Ordering::Relaxed);
    }

    /// Append an operation record and register its LSN as outstanding,
    /// atomically w.r.t. LWM computation.
    pub(crate) fn log_op_record(&self, rec: TcLogRecord) -> Lsn {
        let _g = self.alloc.lock();
        let lsn = self.log.append(rec);
        self.acks.sent(lsn);
        lsn
    }

    /// Append a bookkeeping record (Begin/Commit/Abort/Checkpoint),
    /// atomically w.r.t. LWM computation.
    pub(crate) fn log_bookkeeping(&self, rec: TcLogRecord) -> Lsn {
        let _g = self.alloc.lock();
        let lsn = self.log.append(rec);
        self.acks.bookkeeping(lsn);
        lsn
    }
}
