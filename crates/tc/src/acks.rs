//! Ack tracking: computing the low-water mark the TC sends to DCs
//! (Section 5.1.2, "Establishing LSNlw").
//!
//! The DC cannot know by itself which LSNs below some point are all
//! applied — multithreading delivers operations out of LSN order. The TC
//! can: the LWM is the largest LSN such that every operation with a
//! lower-or-equal LSN has been replied to. Non-operation log records
//! (Begin/Commit/…) also consume LSNs; they count as instantly "acked".

use parking_lot::Mutex;
use std::collections::BTreeSet;
use unbundled_core::Lsn;

/// Tracks outstanding (sent, unacknowledged) operation LSNs.
#[derive(Default)]
pub struct AckTracker {
    inner: Mutex<AckInner>,
}

#[derive(Default)]
struct AckInner {
    /// LSNs sent but not yet acked.
    outstanding: BTreeSet<u64>,
    /// Highest LSN ever assigned (by anyone — ops or bookkeeping).
    highest: u64,
}

impl AckTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that `lsn` was assigned to an operation now in flight.
    pub fn sent(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        g.outstanding.insert(lsn.0);
        g.highest = g.highest.max(lsn.0);
    }

    /// Note a non-operation LSN (instantly complete).
    pub fn bookkeeping(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        g.highest = g.highest.max(lsn.0);
    }

    /// Note that `lsn` was acknowledged.
    pub fn acked(&self, lsn: Lsn) {
        self.inner.lock().outstanding.remove(&lsn.0);
    }

    /// Note a whole batch of acknowledgements (a [`ReplyBatch`] arrived):
    /// one lock acquisition — and therefore one low-water-mark frontier
    /// advance — per batch instead of per ack.
    ///
    /// [`ReplyBatch`]: unbundled_core::DcToTc::ReplyBatch
    pub fn acked_many(&self, lsns: impl IntoIterator<Item = Lsn>) {
        let mut g = self.inner.lock();
        for lsn in lsns {
            g.outstanding.remove(&lsn.0);
        }
    }

    /// The low-water mark: all operations ≤ this LSN have replies.
    pub fn lwm(&self) -> Lsn {
        let g = self.inner.lock();
        match g.outstanding.first() {
            Some(&min) => Lsn(min - 1),
            None => Lsn(g.highest),
        }
    }

    /// Number of in-flight operations.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().outstanding.len()
    }

    /// Forget everything (TC restart).
    pub fn reset(&self, highest: Lsn) {
        let mut g = self.inner.lock();
        g.outstanding.clear();
        g.highest = highest.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lwm_is_contiguous_acked_prefix() {
        let t = AckTracker::new();
        t.sent(Lsn(1));
        t.sent(Lsn(2));
        t.sent(Lsn(3));
        assert_eq!(t.lwm(), Lsn(0));
        t.acked(Lsn(2)); // gap at 1 remains
        assert_eq!(t.lwm(), Lsn(0));
        t.acked(Lsn(1));
        assert_eq!(t.lwm(), Lsn(2));
        t.acked(Lsn(3));
        assert_eq!(t.lwm(), Lsn(3));
    }

    #[test]
    fn bookkeeping_lsns_do_not_block() {
        let t = AckTracker::new();
        t.bookkeeping(Lsn(1)); // Begin record
        t.sent(Lsn(2));
        t.acked(Lsn(2));
        t.bookkeeping(Lsn(3)); // Commit record
        assert_eq!(t.lwm(), Lsn(3));
    }

    #[test]
    fn reset_clears_outstanding() {
        let t = AckTracker::new();
        t.sent(Lsn(5));
        t.reset(Lsn(10));
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.lwm(), Lsn(10));
    }

    #[test]
    fn fully_out_of_order_acks_advance_only_at_the_end() {
        let t = AckTracker::new();
        for l in 1..=5 {
            t.sent(Lsn(l));
        }
        // Ack in strictly reverse order: the gap at the front pins the
        // LWM until the very first LSN is acked.
        for l in (2..=5).rev() {
            t.acked(Lsn(l));
            assert_eq!(t.lwm(), Lsn(0), "gap at LSN 1 must pin the LWM");
        }
        t.acked(Lsn(1));
        assert_eq!(t.lwm(), Lsn(5));
    }

    #[test]
    fn gap_at_the_very_first_lsn_yields_lwm_zero() {
        let t = AckTracker::new();
        t.sent(Lsn(1));
        assert_eq!(t.lwm(), Lsn(0), "nothing acked: LWM is the null LSN");
        t.sent(Lsn(2));
        t.acked(Lsn(2));
        assert_eq!(t.lwm(), Lsn(0), "LSN 1 still outstanding");
        t.acked(Lsn(1));
        assert_eq!(t.lwm(), Lsn(2));
    }

    #[test]
    fn acked_many_advances_like_individual_acks() {
        let t = AckTracker::new();
        for l in 1..=6 {
            t.sent(Lsn(l));
        }
        // A batch covering a strict prefix with a gap left at 5.
        t.acked_many([Lsn(2), Lsn(1), Lsn(4), Lsn(3), Lsn(6)]);
        assert_eq!(t.lwm(), Lsn(4), "gap at 5 pins the LWM despite the batch");
        assert_eq!(t.outstanding(), 1);
        t.acked_many([Lsn(5), Lsn(99)]); // stale entries are harmless
        assert_eq!(t.lwm(), Lsn(6));
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn acking_an_unknown_lsn_is_harmless() {
        let t = AckTracker::new();
        t.sent(Lsn(3));
        t.acked(Lsn(99)); // stale/duplicate reply for something long done
        assert_eq!(t.lwm(), Lsn(2));
        assert_eq!(t.outstanding(), 1);
    }

    #[test]
    fn bookkeeping_lsns_interleaved_with_ops() {
        let t = AckTracker::new();
        t.bookkeeping(Lsn(1)); // Begin
        t.sent(Lsn(2)); // op
        t.bookkeeping(Lsn(3)); // Begin of a second txn
        t.sent(Lsn(4)); // op
        t.bookkeeping(Lsn(5)); // Commit
        assert_eq!(t.lwm(), Lsn(1), "ops at 2 and 4 outstanding");
        t.acked(Lsn(4));
        assert_eq!(t.lwm(), Lsn(1), "op at 2 still outstanding");
        t.acked(Lsn(2));
        assert_eq!(t.lwm(), Lsn(5), "bookkeeping LSNs fill every gap");
    }

    #[test]
    fn lwm_is_monotone_under_concurrent_assign_and_ack() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{mpsc, Arc};

        let t = Arc::new(AckTracker::new());
        let done = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<u64>();

        // Assigner: sequential LSNs, mixing ops and bookkeeping (this is
        // what the TC's alloc lock guarantees in production).
        let assigner = {
            let t = t.clone();
            std::thread::spawn(move || {
                for lsn in 1..=4000u64 {
                    if lsn % 3 == 0 {
                        t.bookkeeping(Lsn(lsn));
                    } else {
                        t.sent(Lsn(lsn));
                        tx.send(lsn).unwrap();
                    }
                }
            })
        };
        // Acker: acks out of order within a sliding window of 8.
        let acker = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut window: Vec<u64> = Vec::new();
                let mut state = 0x9E3779B97F4A7C15u64;
                let mut drain = |w: &mut Vec<u64>, all: bool| {
                    while w.len() >= 8 || (all && !w.is_empty()) {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let i = (state >> 33) as usize % w.len();
                        t.acked(Lsn(w.swap_remove(i)));
                    }
                };
                while let Ok(lsn) = rx.recv() {
                    window.push(lsn);
                    drain(&mut window, false);
                }
                drain(&mut window, true);
            })
        };
        // Observer: the published low-water mark must never move
        // backwards while sends and acks race.
        let observer = {
            let t = t.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last = Lsn(0);
                while !done.load(Ordering::Acquire) {
                    let now = t.lwm();
                    assert!(now >= last, "LWM regressed: {last:?} -> {now:?}");
                    last = now;
                }
                last
            })
        };
        assigner.join().unwrap();
        acker.join().unwrap();
        done.store(true, Ordering::Release);
        let final_seen = observer.join().unwrap();
        assert_eq!(
            t.lwm(),
            Lsn(4000),
            "everything acked: LWM is the highest LSN"
        );
        assert!(final_seen <= Lsn(4000));
        assert_eq!(t.outstanding(), 0);
    }
}
