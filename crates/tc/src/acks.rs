//! Ack tracking: computing the low-water mark the TC sends to DCs
//! (Section 5.1.2, "Establishing LSNlw").
//!
//! The DC cannot know by itself which LSNs below some point are all
//! applied — multithreading delivers operations out of LSN order. The TC
//! can: the LWM is the largest LSN such that every operation with a
//! lower-or-equal LSN has been replied to. Non-operation log records
//! (Begin/Commit/…) also consume LSNs; they count as instantly "acked".

use parking_lot::Mutex;
use std::collections::BTreeSet;
use unbundled_core::Lsn;

/// Tracks outstanding (sent, unacknowledged) operation LSNs.
#[derive(Default)]
pub struct AckTracker {
    inner: Mutex<AckInner>,
}

#[derive(Default)]
struct AckInner {
    /// LSNs sent but not yet acked.
    outstanding: BTreeSet<u64>,
    /// Highest LSN ever assigned (by anyone — ops or bookkeeping).
    highest: u64,
}

impl AckTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that `lsn` was assigned to an operation now in flight.
    pub fn sent(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        g.outstanding.insert(lsn.0);
        g.highest = g.highest.max(lsn.0);
    }

    /// Note a non-operation LSN (instantly complete).
    pub fn bookkeeping(&self, lsn: Lsn) {
        let mut g = self.inner.lock();
        g.highest = g.highest.max(lsn.0);
    }

    /// Note that `lsn` was acknowledged.
    pub fn acked(&self, lsn: Lsn) {
        self.inner.lock().outstanding.remove(&lsn.0);
    }

    /// The low-water mark: all operations ≤ this LSN have replies.
    pub fn lwm(&self) -> Lsn {
        let g = self.inner.lock();
        match g.outstanding.first() {
            Some(&min) => Lsn(min - 1),
            None => Lsn(g.highest),
        }
    }

    /// Number of in-flight operations.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().outstanding.len()
    }

    /// Forget everything (TC restart).
    pub fn reset(&self, highest: Lsn) {
        let mut g = self.inner.lock();
        g.outstanding.clear();
        g.highest = highest.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lwm_is_contiguous_acked_prefix() {
        let t = AckTracker::new();
        t.sent(Lsn(1));
        t.sent(Lsn(2));
        t.sent(Lsn(3));
        assert_eq!(t.lwm(), Lsn(0));
        t.acked(Lsn(2)); // gap at 1 remains
        assert_eq!(t.lwm(), Lsn(0));
        t.acked(Lsn(1));
        assert_eq!(t.lwm(), Lsn(2));
        t.acked(Lsn(3));
        assert_eq!(t.lwm(), Lsn(3));
    }

    #[test]
    fn bookkeeping_lsns_do_not_block() {
        let t = AckTracker::new();
        t.bookkeeping(Lsn(1)); // Begin record
        t.sent(Lsn(2));
        t.acked(Lsn(2));
        t.bookkeeping(Lsn(3)); // Commit record
        assert_eq!(t.lwm(), Lsn(3));
    }

    #[test]
    fn reset_clears_outstanding() {
        let t = AckTracker::new();
        t.sent(Lsn(5));
        t.reset(Lsn(10));
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.lwm(), Lsn(10));
    }
}
