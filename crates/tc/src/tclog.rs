//! The TC's logical log (paper Section 4.1.1(3)).
//!
//! Every state-changing logical operation is logged with both its redo
//! form (the operation itself — resent verbatim during recovery) and its
//! undo form (the inverse operation, computed from the prior record
//! state the TC knows under its locks). Because the TC never sees pages,
//! no record here contains a page id: redo is *logical* (Section 3.2(1)).
//!
//! Lock-before-log discipline gives OPSR (order-preserving serializable)
//! log order: conflicting operations are serialized by the lock manager
//! before their LSNs are drawn, so replaying the log in LSN order
//! reproduces every conflict in its original order even though
//! non-conflicting operations may have executed out of LSN order.

use std::sync::Arc;
use unbundled_core::{DcId, LogicalOp, Lsn, TcId, TxnId};
use unbundled_storage::LogStore;

/// One TC-log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcLogRecord {
    /// Transaction start.
    Begin {
        /// Starting transaction.
        txn: TxnId,
    },
    /// A logged logical operation (LSN = its sequence number).
    Op {
        /// Owning transaction.
        txn: TxnId,
        /// Destination DC.
        dc: DcId,
        /// The operation (redo form: resent verbatim).
        op: LogicalOp,
        /// The inverse operation (undo form), if the operation is
        /// undoable and succeeded-so-far knowledge allows one.
        undo: Option<LogicalOp>,
    },
    /// Redo-only operation: inverse operations issued during rollback
    /// (the logical analogue of compensation log records) and
    /// post-commit version promotions. Never undone.
    RedoOnly {
        /// Owning transaction.
        txn: TxnId,
        /// Destination DC.
        dc: DcId,
        /// The operation.
        op: LogicalOp,
    },
    /// Transaction committed (forced).
    Commit {
        /// Committed transaction.
        txn: TxnId,
    },
    /// Cross-TC 2PC, participant side: this shard's branch of a
    /// distributed transaction is prepared — all its operations are
    /// logged and stable, its locks are held, and the shard has voted
    /// yes. Forced before the vote is returned. Recovery finding a
    /// Prepare with no later resolution record re-resolves the branch
    /// against the coordinator's log (presumed abort: no decision there
    /// and no live coordinator transaction means abort).
    Prepare {
        /// The participant-local branch transaction.
        txn: TxnId,
        /// The coordinating TC shard.
        coord: TcId,
        /// The coordinator's (global) transaction id.
        gtxn: TxnId,
    },
    /// Cross-TC 2PC, coordinator side: the commit point of a distributed
    /// transaction. Forced; once stable the transaction is committed
    /// everywhere even if the decision broadcast is lost — participants
    /// re-read it from this log. Presumed abort means no analogous abort
    /// decision is ever logged: an aborting coordinator just logs its
    /// ordinary [`TcLogRecord::Abort`].
    CommitDecision {
        /// The committing (coordinator-local) transaction.
        txn: TxnId,
        /// The participant shards that prepared.
        participants: Vec<TcId>,
    },
    /// Cross-TC 2PC, participant side: the branch learned the commit
    /// decision and committed locally. Forced before acknowledging the
    /// decision so the coordinator may forget it (truncate its log past
    /// the decision).
    ParticipantCommit {
        /// The participant-local branch transaction.
        txn: TxnId,
    },
    /// Cross-TC 2PC, participant side: the branch was aborted (all
    /// inverse operations logged before this, as for
    /// [`TcLogRecord::Abort`]).
    ParticipantAbort {
        /// The participant-local branch transaction.
        txn: TxnId,
    },
    /// Transaction aborted (all inverse operations logged before this).
    Abort {
        /// Aborted transaction.
        txn: TxnId,
    },
    /// Checkpoint: redo scan start point + active transactions at the
    /// time (contract termination, Section 4.2).
    Checkpoint {
        /// Granted redo scan start point.
        rssp: Lsn,
        /// Transactions active at checkpoint time.
        active: Vec<TxnId>,
    },
    /// Failover promotion: replica `new` replaced deposed primary `old`
    /// as the writable primary of its partition. Everything below
    /// `floor` was made stable at `new` during promotion (stream
    /// catch-up + flush), so recovery must never replay raw history
    /// below the floor to it — a replica's committed-only state has
    /// abstract-LSN "holes" at rolled-back operations, and re-executing
    /// those against newer state would corrupt it. Also teaches a
    /// recovering TC the `old → new` routing alias.
    Promote {
        /// The deposed (fenced) primary.
        old: DcId,
        /// The promoted replica, now primary.
        new: DcId,
        /// Redo floor: records below this are stable at `new`.
        floor: Lsn,
    },
    /// Write-ahead intent for a failover promotion: forced *before* the
    /// old primary is fenced, so a TC crash mid-promotion no longer
    /// loses the failover. Recovery finding an intent with no matching
    /// [`TcLogRecord::Promote`] re-drives the promotion.
    PromoteIntent {
        /// The primary about to be deposed.
        old: DcId,
        /// The replica about to be promoted.
        new: DcId,
    },
    /// Write-ahead intent for an elastic rebalance: forced *before* the
    /// moving range `[lo, hi]` is fenced and drained. An intent with no
    /// matching [`TcLogRecord::RebalanceDone`] means the move never took
    /// effect — the new map is only published after the done record is
    /// stable — so recovery simply discards it and the old topology
    /// stands.
    RebalanceIntent {
        /// Inclusive low end of the moving range.
        lo: u64,
        /// Inclusive high end of the moving range.
        hi: u64,
        /// The TC gaining the range.
        to: TcId,
        /// The epoch the republished map will carry.
        epoch: u64,
    },
    /// Elastic rebalance completion: lock and log authority for
    /// `[lo, hi]` has left this TC in favour of `to`. Forced *before*
    /// the epoch-`epoch` map is republished, so a map any peer ever saw
    /// implies this record is durable. `floor` records the source's
    /// `min(stable, twopc_floor, replication_floor)` at handoff: nothing
    /// below it — no pinned 2PC decision, no unshipped replication group
    /// — can be stranded by the move, because the source's self-contained
    /// log keeps serving both until they drain past it.
    RebalanceDone {
        /// Inclusive low end of the moved range.
        lo: u64,
        /// Inclusive high end of the moved range.
        hi: u64,
        /// The TC that gained the range.
        to: TcId,
        /// The epoch of the map that publishes this move.
        epoch: u64,
        /// Source durability floor at handoff (diagnostic).
        floor: Lsn,
    },
}

fn op_size(op: &LogicalOp) -> usize {
    match op {
        LogicalOp::Insert { key, value, .. }
        | LogicalOp::Update { key, value, .. }
        | LogicalOp::VersionedWrite { key, value, .. } => 16 + key.len() + value.len(),
        LogicalOp::Delete { key, .. }
        | LogicalOp::PromoteVersion { key, .. }
        | LogicalOp::RevertVersion { key, .. }
        | LogicalOp::Read { key, .. } => 16 + key.len(),
        LogicalOp::StampCommit { key, .. } => 32 + key.len(),
        LogicalOp::ScanRange { low, high, .. } => {
            16 + low.len() + high.as_ref().map(|h| h.len()).unwrap_or(0)
        }
        LogicalOp::ProbeKeys { from, .. } => 16 + from.len(),
    }
}

impl TcLogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            TcLogRecord::Begin { txn }
            | TcLogRecord::Op { txn, .. }
            | TcLogRecord::RedoOnly { txn, .. }
            | TcLogRecord::Commit { txn }
            | TcLogRecord::Abort { txn }
            | TcLogRecord::Prepare { txn, .. }
            | TcLogRecord::CommitDecision { txn, .. }
            | TcLogRecord::ParticipantCommit { txn }
            | TcLogRecord::ParticipantAbort { txn } => Some(*txn),
            TcLogRecord::Checkpoint { .. }
            | TcLogRecord::Promote { .. }
            | TcLogRecord::PromoteIntent { .. }
            | TcLogRecord::RebalanceIntent { .. }
            | TcLogRecord::RebalanceDone { .. } => None,
        }
    }

    /// Approximate encoded size (log-space accounting).
    pub fn encoded_size(&self) -> usize {
        match self {
            TcLogRecord::Begin { .. } | TcLogRecord::Commit { .. } | TcLogRecord::Abort { .. } => {
                17
            }
            TcLogRecord::Op { op, undo, .. } => {
                19 + op_size(op) + undo.as_ref().map(op_size).unwrap_or(0)
            }
            TcLogRecord::RedoOnly { op, .. } => 19 + op_size(op),
            TcLogRecord::Checkpoint { active, .. } => 17 + 8 * active.len(),
            TcLogRecord::Promote { .. } => 21,
            TcLogRecord::PromoteIntent { .. } => 13,
            TcLogRecord::RebalanceIntent { .. } => 27,
            TcLogRecord::RebalanceDone { .. } => 35,
            TcLogRecord::Prepare { .. } => 27,
            TcLogRecord::CommitDecision { participants, .. } => 17 + 2 * participants.len(),
            TcLogRecord::ParticipantCommit { .. } | TcLogRecord::ParticipantAbort { .. } => 17,
        }
    }
}

/// Handle around the TC's log store: LSNs are the store's sequence
/// numbers.
pub struct TcLogHandle {
    store: Arc<LogStore<TcLogRecord>>,
}

impl TcLogHandle {
    /// Wrap a (possibly crash-surviving) store.
    pub fn new(store: Arc<LogStore<TcLogRecord>>) -> Self {
        TcLogHandle { store }
    }

    /// Append; returns the record's LSN.
    pub fn append(&self, rec: TcLogRecord) -> Lsn {
        let size = rec.encoded_size();
        Lsn(self.store.append(rec, size))
    }

    /// Force; returns the new end of stable log (EOSL).
    pub fn force(&self) -> Lsn {
        Lsn(self.store.force())
    }

    /// End of stable log.
    pub fn stable(&self) -> Lsn {
        Lsn(self.store.stable_seq())
    }

    /// Last assigned LSN.
    pub fn last(&self) -> Lsn {
        Lsn(self.store.last_seq())
    }

    /// Underlying store.
    pub fn store(&self) -> &Arc<LogStore<TcLogRecord>> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unbundled_core::{Key, TableId};

    #[test]
    fn append_force_crash_semantics() {
        let h = TcLogHandle::new(Arc::new(LogStore::new()));
        let l1 = h.append(TcLogRecord::Begin { txn: TxnId(1) });
        assert_eq!(l1, Lsn(1));
        assert_eq!(h.stable(), Lsn(0));
        assert_eq!(h.force(), Lsn(1));
        h.append(TcLogRecord::Commit { txn: TxnId(1) });
        assert_eq!(h.store().crash(), 1, "unforced commit lost");
    }

    #[test]
    fn op_record_sizes_include_undo() {
        let op = LogicalOp::Update {
            table: TableId(1),
            key: Key::from_u64(1),
            value: vec![0; 100],
        };
        let undo = op.inverse(Some(&[0; 50])).unwrap();
        let with = TcLogRecord::Op {
            txn: TxnId(1),
            dc: DcId(1),
            op: op.clone(),
            undo: Some(undo),
        };
        let without = TcLogRecord::Op {
            txn: TxnId(1),
            dc: DcId(1),
            op,
            undo: None,
        };
        assert!(with.encoded_size() > without.encoded_size() + 50);
    }

    #[test]
    fn txn_extraction() {
        assert_eq!(TcLogRecord::Begin { txn: TxnId(3) }.txn(), Some(TxnId(3)));
        assert_eq!(
            TcLogRecord::Checkpoint {
                rssp: Lsn(1),
                active: vec![]
            }
            .txn(),
            None
        );
    }
}
