//! TC-side counters backing the experiments.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic TC counters.
#[derive(Default, Debug)]
pub struct TcStats {
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted (user abort, deadlock, operation failure).
    pub aborts: AtomicU64,
    /// Aborts caused by deadlock victims.
    pub deadlock_aborts: AtomicU64,
    /// Logged operations sent (first sends).
    pub ops_sent: AtomicU64,
    /// Resends of operations (lost/late replies).
    pub resends: AtomicU64,
    /// Unlogged reads/probes/scans sent.
    pub reads_sent: AtomicU64,
    /// Replies that arrived after their waiter gave up (duplicates).
    pub stale_replies: AtomicU64,
    /// Checkpoints taken.
    pub checkpoints: AtomicU64,
    /// Operations resent during recovery (redo).
    pub redo_resends: AtomicU64,
    /// Inverse operations sent during rollback/recovery (undo).
    pub undo_ops: AtomicU64,
    /// DC-crash recoveries driven.
    pub dc_recoveries: AtomicU64,
    /// EOSL/LWM publications skipped because a group-commit leader's
    /// broadcast already covered this committer's frontier.
    pub publishes_coalesced: AtomicU64,
    /// Coalesced `ReplyBatch` messages received (each advanced the ack
    /// frontier once for all the acks it carried).
    pub reply_batches: AtomicU64,
    /// Replication `ShipBatch` datagrams put on the wire (resends
    /// included).
    pub ship_batches: AtomicU64,
    /// Redo records carried inside those batches.
    pub ship_records: AtomicU64,
    /// Reads served by a replica (routing found a fresh-enough one).
    pub replica_reads: AtomicU64,
    /// Replica-eligible reads that fell back to the primary (no replica
    /// covered the requested snapshot, or the chosen replica failed).
    pub replica_read_fallbacks: AtomicU64,
    /// Failover promotions driven (replica → writable primary).
    pub promotions: AtomicU64,
    /// Cross-TC 2PC: participant branches prepared (yes votes).
    pub prepares: AtomicU64,
    /// Cross-TC 2PC: distributed transactions committed at this
    /// coordinator (also counted in `commits`).
    pub cross_commits: AtomicU64,
    /// Cross-TC 2PC: distributed transactions aborted at this
    /// coordinator (prepare refused, or coordinator-side failure).
    pub cross_aborts: AtomicU64,
    /// Cross-TC 2PC: in-doubt participant branches resolved against the
    /// coordinator's log (recovery or explicit re-resolution).
    pub indoubt_resolved: AtomicU64,
    /// Elastic rebalance: range moves completed at this TC as the
    /// source (RebalanceDone forced).
    pub rebalances: AtomicU64,
    /// Elastic rebalance: forwards rejected here because the sender's
    /// map epoch was stale (the op was not executed).
    pub stale_forward_rejects: AtomicU64,
    /// Elastic rebalance: forwards re-routed by this (sender) TC after
    /// a stale-epoch rejection.
    pub stale_forward_reroutes: AtomicU64,
    /// Elastic rebalance: local ops that slept on a fence, woke after
    /// it resolved, and re-resolved their owner under the republished
    /// map instead of executing under lapsed authority.
    pub fence_reroutes: AtomicU64,
    /// Serializable locking point reads served (S record lock taken).
    pub lock_reads: AtomicU64,
    /// Lock-free MVCC snapshot point reads served from the primary
    /// (explicit snapshot requests plus replica-read fallbacks).
    pub snapshot_reads: AtomicU64,
    /// Commit-stamp operations sent to DCs (one per distinct key a
    /// committed transaction wrote).
    pub stamps_sent: AtomicU64,
}

/// Point-in-time copy of [`TcStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcSnapshot {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Deadlock-victim aborts.
    pub deadlock_aborts: u64,
    /// Logged operations sent.
    pub ops_sent: u64,
    /// Operation resends.
    pub resends: u64,
    /// Unlogged reads sent.
    pub reads_sent: u64,
    /// Stale replies.
    pub stale_replies: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Redo resends during recovery.
    pub redo_resends: u64,
    /// Undo operations sent.
    pub undo_ops: u64,
    /// DC recoveries driven.
    pub dc_recoveries: u64,
    /// Coalesced (skipped) EOSL/LWM publications.
    pub publishes_coalesced: u64,
    /// Coalesced reply batches received.
    pub reply_batches: u64,
    /// Ship batches sent.
    pub ship_batches: u64,
    /// Redo records shipped.
    pub ship_records: u64,
    /// Replica-served reads.
    pub replica_reads: u64,
    /// Replica reads that fell back to the primary.
    pub replica_read_fallbacks: u64,
    /// Failover promotions driven.
    pub promotions: u64,
    /// Participant branches prepared.
    pub prepares: u64,
    /// Distributed transactions committed at this coordinator.
    pub cross_commits: u64,
    /// Distributed transactions aborted at this coordinator.
    pub cross_aborts: u64,
    /// In-doubt participant branches resolved.
    pub indoubt_resolved: u64,
    /// Range moves completed at this TC as the source.
    pub rebalances: u64,
    /// Stale-epoch forwards rejected at this TC.
    pub stale_forward_rejects: u64,
    /// Forwards re-routed by this TC after a stale-epoch rejection.
    pub stale_forward_reroutes: u64,
    /// Local ops re-routed after sleeping through a fence resolution.
    pub fence_reroutes: u64,
    /// Serializable locking point reads served.
    pub lock_reads: u64,
    /// Lock-free MVCC snapshot point reads served from the primary.
    pub snapshot_reads: u64,
    /// Commit-stamp operations sent to DCs.
    pub stamps_sent: u64,
}

impl TcStats {
    /// Copy current values.
    pub fn snapshot(&self) -> TcSnapshot {
        TcSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            deadlock_aborts: self.deadlock_aborts.load(Ordering::Relaxed),
            ops_sent: self.ops_sent.load(Ordering::Relaxed),
            resends: self.resends.load(Ordering::Relaxed),
            reads_sent: self.reads_sent.load(Ordering::Relaxed),
            stale_replies: self.stale_replies.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            redo_resends: self.redo_resends.load(Ordering::Relaxed),
            undo_ops: self.undo_ops.load(Ordering::Relaxed),
            dc_recoveries: self.dc_recoveries.load(Ordering::Relaxed),
            publishes_coalesced: self.publishes_coalesced.load(Ordering::Relaxed),
            reply_batches: self.reply_batches.load(Ordering::Relaxed),
            ship_batches: self.ship_batches.load(Ordering::Relaxed),
            ship_records: self.ship_records.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            replica_read_fallbacks: self.replica_read_fallbacks.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            prepares: self.prepares.load(Ordering::Relaxed),
            cross_commits: self.cross_commits.load(Ordering::Relaxed),
            cross_aborts: self.cross_aborts.load(Ordering::Relaxed),
            indoubt_resolved: self.indoubt_resolved.load(Ordering::Relaxed),
            rebalances: self.rebalances.load(Ordering::Relaxed),
            stale_forward_rejects: self.stale_forward_rejects.load(Ordering::Relaxed),
            stale_forward_reroutes: self.stale_forward_reroutes.load(Ordering::Relaxed),
            fence_reroutes: self.fence_reroutes.load(Ordering::Relaxed),
            lock_reads: self.lock_reads.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            stamps_sent: self.stamps_sent.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_bumps() {
        let s = TcStats::default();
        TcStats::bump(&s.commits);
        TcStats::bump(&s.resends);
        TcStats::bump(&s.resends);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.resends, 2);
    }
}
