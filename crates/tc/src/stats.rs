//! TC-side counters and histograms backing the experiments.
//!
//! All metrics live in a per-instance [`Registry`] (one per TC), named
//! `tc.*`; [`TcSnapshot`] stays as the stable, field-per-stat public
//! view, now materialized from a single registry pass.
//!
//! Snapshot semantics: the registry pass reads every counter once,
//! back-to-back under the registry lock. Each field is individually
//! exact and monotone, but cross-field invariants (`stamps_sent` vs.
//! `commits`, `cross_commits ≤ commits`, …) are best-effort when read
//! mid-traffic — the pass is not a linearization point across writer
//! threads. Quiesce the TC (as the tests and benches do) before
//! asserting exact cross-field relations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use unbundled_obs::{Counter, Histogram, Registry};

/// Sliding-window sketch of the route points of recently executed
/// mutations, kept per TC so the rebalance policy can place a split cut
/// where the *traffic* median is — not the key-space midpoint, which a
/// skewed workload makes useless.
///
/// The sketch is a fixed ring of the last [`KeySketch::WINDOW`] observed
/// route points: each record is one relaxed `fetch_add` plus one relaxed
/// store, cheap enough to leave on for every mutation. Recency-weighting
/// is deliberate — a controller wants the median of *current* traffic,
/// and old samples aging out is exactly the hysteresis-friendly behavior
/// (a shard whose hotspot moved is re-observed within one window).
///
/// Readers ([`KeySketch::median_in`], [`KeySketch::count_in`]) copy the
/// filled slots without locking; a torn read against concurrent writers
/// perturbs individual samples, never the structure, which is fine for a
/// policy input.
pub struct KeySketch {
    slots: Vec<AtomicU64>,
    next: AtomicU64,
}

impl Default for KeySketch {
    fn default() -> Self {
        KeySketch::new(Self::WINDOW)
    }
}

impl KeySketch {
    /// Default ring capacity: large enough that a 50 ms policy tick at
    /// tens of thousands of commits/s still sees a full window of fresh
    /// samples, small enough to scan in microseconds.
    pub const WINDOW: usize = 4096;

    /// A sketch with `slots` ring capacity (rounded up to 1).
    pub fn new(slots: usize) -> Self {
        KeySketch {
            slots: (0..slots.max(1)).map(|_| AtomicU64::new(0)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Record one observed route point.
    pub fn record(&self, point: u64) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) as usize;
        self.slots[i % self.slots.len()].store(point, Ordering::Relaxed);
    }

    /// Samples currently held (saturates at the ring capacity).
    pub fn observed(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// Held samples whose route point falls inside `[lo, hi]`.
    pub fn count_in(&self, lo: u64, hi: u64) -> usize {
        self.slots[..self.observed()]
            .iter()
            .filter(|s| {
                let p = s.load(Ordering::Relaxed);
                (lo..=hi).contains(&p)
            })
            .count()
    }

    /// Median route point of the held samples inside `[lo, hi]`, or
    /// `None` when no sample landed there (an unobserved — e.g. empty —
    /// shard has no median to split at; the policy must reject the
    /// split rather than guess).
    pub fn median_in(&self, lo: u64, hi: u64) -> Option<u64> {
        let mut pts: Vec<u64> = self.slots[..self.observed()]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|p| (lo..=hi).contains(p))
            .collect();
        if pts.is_empty() {
            return None;
        }
        let mid = pts.len() / 2;
        let (_, m, _) = pts.select_nth_unstable(mid);
        Some(*m)
    }
}

macro_rules! tc_stats {
    ($( $(#[$doc:meta])* $field:ident => $name:literal, $help:literal; )+) => {
        /// Monotonic TC counters plus commit-path latency histograms,
        /// registered in one per-instance metrics [`Registry`].
        pub struct TcStats {
            $( $(#[$doc])* pub $field: Counter, )+
            /// End-to-end commit latency (all commit flavours).
            pub commit_ns: Histogram,
            /// Per-commit time blocked acquiring locks.
            pub stage_lock_wait_ns: Histogram,
            /// Per-commit time gathering (group-commit window/leader wait).
            pub stage_gather_wait_ns: Histogram,
            /// Per-commit time in device flushes.
            pub stage_force_ns: Histogram,
            /// Per-commit time applying operations at DCs.
            pub stage_dc_apply_ns: Histogram,
            /// Per-commit cross-TC 2PC residual (coordination time not
            /// accounted to gather/force/apply; 0 for local commits).
            pub stage_twopc_ns: Histogram,
            /// Replication ship-batch send latency.
            pub ship_batch_ns: Histogram,
            /// Route points of recent mutations (split-placement input
            /// for the rebalance policy). Not part of the registry: it
            /// is a structural sketch, not a scalar metric.
            pub keys: KeySketch,
            registry: Arc<Registry>,
        }

        impl Default for TcStats {
            fn default() -> Self {
                let registry = Registry::new();
                TcStats {
                    $( $field: registry.counter($name, "ops", $help), )+
                    commit_ns: registry.histogram(
                        "tc.commit_ns", "ns", "end-to-end commit latency"),
                    stage_lock_wait_ns: registry.histogram(
                        "tc.commit_stage.lock_wait_ns", "ns",
                        "per-commit lock wait"),
                    stage_gather_wait_ns: registry.histogram(
                        "tc.commit_stage.gather_wait_ns", "ns",
                        "per-commit group-commit gather wait"),
                    stage_force_ns: registry.histogram(
                        "tc.commit_stage.force_ns", "ns",
                        "per-commit device flush time"),
                    stage_dc_apply_ns: registry.histogram(
                        "tc.commit_stage.dc_apply_ns", "ns",
                        "per-commit DC apply time"),
                    stage_twopc_ns: registry.histogram(
                        "tc.commit_stage.twopc_ns", "ns",
                        "per-commit 2PC coordination residual"),
                    ship_batch_ns: registry.histogram(
                        "tc.ship_batch_ns", "ns",
                        "replication ship-batch send latency"),
                    keys: KeySketch::default(),
                    registry: Arc::new(registry),
                }
            }
        }

        impl TcStats {
            /// Copy current counter values in one registry pass.
            pub fn snapshot(&self) -> TcSnapshot {
                let snap = self.registry.snapshot();
                TcSnapshot {
                    $( $field: snap.counter($name), )+
                }
            }

            /// This instance's metrics registry.
            pub fn registry(&self) -> &Arc<Registry> {
                &self.registry
            }

            pub(crate) fn bump(c: &AtomicU64) {
                c.fetch_add(1, Ordering::Relaxed);
            }

            pub(crate) fn add(c: &AtomicU64, n: u64) {
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    };
}

tc_stats! {
    /// Transactions committed.
    commits => "tc.commits", "transactions committed";
    /// Transactions aborted (user abort, deadlock, operation failure).
    aborts => "tc.aborts", "transactions aborted";
    /// Aborts caused by deadlock victims.
    deadlock_aborts => "tc.deadlock_aborts", "deadlock-victim aborts";
    /// Logged operations sent (first sends).
    ops_sent => "tc.ops_sent", "logged operations sent";
    /// Resends of operations (lost/late replies).
    resends => "tc.resends", "operation resends";
    /// Unlogged reads/probes/scans sent.
    reads_sent => "tc.reads_sent", "unlogged reads sent";
    /// Replies that arrived after their waiter gave up (duplicates).
    stale_replies => "tc.stale_replies", "stale replies received";
    /// Checkpoints taken.
    checkpoints => "tc.checkpoints", "checkpoints taken";
    /// Operations resent during recovery (redo).
    redo_resends => "tc.redo_resends", "recovery redo resends";
    /// Inverse operations sent during rollback/recovery (undo).
    undo_ops => "tc.undo_ops", "undo operations sent";
    /// DC-crash recoveries driven.
    dc_recoveries => "tc.dc_recoveries", "DC recoveries driven";
    /// EOSL/LWM publications skipped because a group-commit leader's
    /// broadcast already covered this committer's frontier.
    publishes_coalesced => "tc.publishes_coalesced", "coalesced EOSL/LWM publications";
    /// Coalesced `ReplyBatch` messages received (each advanced the ack
    /// frontier once for all the acks it carried).
    reply_batches => "tc.reply_batches", "coalesced reply batches received";
    /// Replication `ShipBatch` datagrams put on the wire (resends
    /// included).
    ship_batches => "tc.ship_batches", "replication ship batches sent";
    /// Redo records carried inside those batches.
    ship_records => "tc.ship_records", "redo records shipped";
    /// Reads served by a replica (routing found a fresh-enough one).
    replica_reads => "tc.replica_reads", "replica-served reads";
    /// Replica-eligible reads that fell back to the primary (no replica
    /// covered the requested snapshot, or the chosen replica failed).
    replica_read_fallbacks => "tc.replica_read_fallbacks", "replica reads that fell back";
    /// Failover promotions driven (replica → writable primary).
    promotions => "tc.promotions", "failover promotions driven";
    /// Cross-TC 2PC: participant branches prepared (yes votes).
    prepares => "tc.prepares", "participant branches prepared";
    /// Cross-TC 2PC: distributed transactions committed at this
    /// coordinator (also counted in `commits`).
    cross_commits => "tc.cross_commits", "distributed transactions committed";
    /// Cross-TC 2PC: distributed transactions aborted at this
    /// coordinator (prepare refused, or coordinator-side failure).
    cross_aborts => "tc.cross_aborts", "distributed transactions aborted";
    /// Cross-TC 2PC: in-doubt participant branches resolved against the
    /// coordinator's log (recovery or explicit re-resolution).
    indoubt_resolved => "tc.indoubt_resolved", "in-doubt branches resolved";
    /// Elastic rebalance: range moves completed at this TC as the
    /// source (RebalanceDone forced).
    rebalances => "tc.rebalances", "range moves completed";
    /// Elastic rebalance: forwards rejected here because the sender's
    /// map epoch was stale (the op was not executed).
    stale_forward_rejects => "tc.stale_forward_rejects", "stale-epoch forwards rejected";
    /// Elastic rebalance: forwards re-routed by this (sender) TC after
    /// a stale-epoch rejection.
    stale_forward_reroutes => "tc.stale_forward_reroutes", "forwards re-routed after rejection";
    /// Elastic rebalance: local ops that slept on a fence, woke after
    /// it resolved, and re-resolved their owner under the republished
    /// map instead of executing under lapsed authority.
    fence_reroutes => "tc.fence_reroutes", "ops re-routed after a fence";
    /// Serializable locking point reads served (S record lock taken).
    lock_reads => "tc.lock_reads", "locking point reads served";
    /// Lock-free MVCC snapshot point reads served from the primary
    /// (explicit snapshot requests plus replica-read fallbacks).
    snapshot_reads => "tc.snapshot_reads", "snapshot point reads served";
    /// Commit-stamp operations sent to DCs (one per distinct key a
    /// committed transaction wrote).
    stamps_sent => "tc.stamps_sent", "commit stamps sent";
}

/// Point-in-time copy of [`TcStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcSnapshot {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Deadlock-victim aborts.
    pub deadlock_aborts: u64,
    /// Logged operations sent.
    pub ops_sent: u64,
    /// Operation resends.
    pub resends: u64,
    /// Unlogged reads sent.
    pub reads_sent: u64,
    /// Stale replies.
    pub stale_replies: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Redo resends during recovery.
    pub redo_resends: u64,
    /// Undo operations sent.
    pub undo_ops: u64,
    /// DC recoveries driven.
    pub dc_recoveries: u64,
    /// Coalesced (skipped) EOSL/LWM publications.
    pub publishes_coalesced: u64,
    /// Coalesced reply batches received.
    pub reply_batches: u64,
    /// Ship batches sent.
    pub ship_batches: u64,
    /// Redo records shipped.
    pub ship_records: u64,
    /// Replica-served reads.
    pub replica_reads: u64,
    /// Replica reads that fell back to the primary.
    pub replica_read_fallbacks: u64,
    /// Failover promotions driven.
    pub promotions: u64,
    /// Participant branches prepared.
    pub prepares: u64,
    /// Distributed transactions committed at this coordinator.
    pub cross_commits: u64,
    /// Distributed transactions aborted at this coordinator.
    pub cross_aborts: u64,
    /// In-doubt participant branches resolved.
    pub indoubt_resolved: u64,
    /// Range moves completed at this TC as the source.
    pub rebalances: u64,
    /// Stale-epoch forwards rejected at this TC.
    pub stale_forward_rejects: u64,
    /// Forwards re-routed by this TC after a stale-epoch rejection.
    pub stale_forward_reroutes: u64,
    /// Local ops re-routed after sleeping through a fence resolution.
    pub fence_reroutes: u64,
    /// Serializable locking point reads served.
    pub lock_reads: u64,
    /// Lock-free MVCC snapshot point reads served from the primary.
    pub snapshot_reads: u64,
    /// Commit-stamp operations sent to DCs.
    pub stamps_sent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_tracks_bumps() {
        let s = TcStats::default();
        TcStats::bump(&s.commits);
        TcStats::bump(&s.resends);
        TcStats::bump(&s.resends);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.resends, 2);
    }

    #[test]
    fn key_sketch_median_and_window() {
        let k = KeySketch::new(8);
        assert_eq!(k.observed(), 0);
        assert_eq!(k.median_in(0, u64::MAX), None);
        for p in [10u64, 20, 30, 40, 50] {
            k.record(p);
        }
        assert_eq!(k.observed(), 5);
        assert_eq!(k.count_in(15, 45), 3);
        assert_eq!(k.median_in(0, u64::MAX), Some(30));
        // No sample inside the probed range: no median is observable.
        assert_eq!(k.median_in(100, 200), None);
        // Overflow the ring: old samples age out, recency wins.
        for p in [100u64, 100, 100, 100, 100, 100, 100, 100] {
            k.record(p);
        }
        assert_eq!(k.observed(), 8);
        assert_eq!(k.median_in(0, u64::MAX), Some(100));
    }

    #[test]
    fn registry_carries_every_counter() {
        let s = TcStats::default();
        TcStats::add(&s.stamps_sent, 5);
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("tc.stamps_sent"), 5);
        assert!(snap.histogram("tc.commit_ns").is_some());
        assert!(snap.histogram("tc.commit_stage.twopc_ns").is_some());
    }
}
