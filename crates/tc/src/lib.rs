//! # unbundled-tc
//!
//! The **Transactional Component** of the unbundled kernel (paper
//! Section 4.1.1): transactional locking without knowledge of pages,
//! logical undo/redo logging, log forcing for durability, transaction
//! atomicity via inverse operations, checkpointing (redo scan start
//! point) and restart.
//!
//! The TC is a *client* of one or more Data Components, speaking the
//! message API in `unbundled-core` under the interaction contracts:
//! unique LSN-based request ids, resend-until-ack, end-of-stable-log
//! (causality / cross-component WAL), low-water marks (abLSN pruning)
//! and the checkpoint/restart conversations.
//!
//! Modules:
//! * [`tclog`] — the logical log (redo ops + inverse undo ops; OPSR
//!   order by lock-before-log).
//! * [`acks`] — ack tracking → low-water mark computation.
//! * [`routing`] — table→DC routing and the Section 3.1 range-locking
//!   protocols (fetch-ahead / static range locks).
//! * [`tc`] — the transaction API: begin/read/scan/insert/update/delete/
//!   versioned-write/commit/abort, plus lock-free committed and dirty
//!   reads for cross-TC sharing (Section 6.2).
//! * [`recovery`] — TC restart and DC-crash recovery.
//! * [`shipper`] — logical log shipping to read-only DC replicas:
//!   committed-redo stream extraction, per-replica cursors with
//!   go-back-N resend, bounded-staleness read routing and failover
//!   promotion support.
//! * [`twopc`] — cross-TC transactions for a key-range-sharded TC tier:
//!   operation forwarding between shards and two-phase commit written
//!   through the shards' existing redo logs (presumed abort).
//! * [`rebalance`] — online split/merge of the shard map: fence + drain
//!   of the moving range, write-ahead intent/done records in the
//!   source's redo log, epoch-checked forwards.

#![warn(missing_docs)]

pub mod acks;
pub mod rebalance;
pub mod recovery;
pub mod routing;
pub mod shipper;
pub mod stats;
pub mod tc;
pub mod tclog;
pub mod twopc;

pub use acks::AckTracker;
pub use rebalance::RebalanceFence;
pub use routing::{DcLink, RangePartitioner, ScanProtocol, TableRoute};
pub use shipper::ReplicaLag;
pub use stats::{KeySketch, TcSnapshot, TcStats};
pub use tc::{GroupCommitCfg, Tc, TcConfig};
pub use tclog::{TcLogHandle, TcLogRecord};
pub use twopc::{TcPeer, TwopcOutcome};
pub use unbundled_core::TcShardMap;
pub use unbundled_core::{ReadConsistency, SnapshotSpec};
pub use unbundled_storage::GatherWindow;
