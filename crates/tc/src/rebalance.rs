//! Online split/merge of the TC shard map (elastic repartitioning).
//!
//! The sharded transaction service only becomes *elastic* when a key
//! range can move between TCs without downtime. The move protocol is
//! driven by the kernel's `Deployment` against the **source** TC (the
//! current owner of the moving range) and is write-ahead logged in the
//! source's ordinary redo log:
//!
//! 1. **Intent** — the source forces a [`TcLogRecord::RebalanceIntent`]
//!    and installs a *fence* over the moving range. New transactions
//!    (and forwards) that would enter the range block, bounded by the
//!    lock timeout; transactions already holding a point inside the
//!    range are *drain members* and keep running under the old
//!    authority until they commit or abort.
//! 2. **Drain** — the driver waits until no live transaction holds a
//!    point inside the range ([`Tc::rebalance_drained`]), pumping 2PC
//!    decision redelivery and in-doubt resolution so cross-TC members
//!    finish. Nothing can be *stranded* by the handoff: 2PC decisions
//!    and replication shipping address TCs by id, not by key range, and
//!    the source keeps its self-contained log — `twopc_floor()` and
//!    `replication_floor()` keep pinning the source's log until every
//!    pinned decision is acknowledged and every group is shipped.
//! 3. **Done** — the source first *checkpoints until its RSSP covers
//!    its whole log*: redo authority moves with the range, and per-TC
//!    redo streams have no cross-TC order, so every pre-move effect
//!    must be stable at the DCs (and permanently outside the source's
//!    redo scan) before another TC may write the range. It then forces
//!    a [`TcLogRecord::RebalanceDone`]
//!    (recording its `min(stable, twopc_floor, replication_floor)`
//!    at handoff). Only after this record is stable does the driver
//!    **republish** the epoch-bumped map to every TC; installing it
//!    clears the fence. Forwarded operations carry the sender's map
//!    epoch and a stale-epoch forward is rejected and re-routed, never
//!    executed on a non-owning shard.
//!
//! Crash rules (enforced by recovery):
//! * Intent without Done ⇒ the move never took effect (no map with the
//!   new epoch was ever published, because publishing waits for Done to
//!   be stable). Recovery discards the intent; the old topology stands.
//! * Done with an epoch above the installed map's ⇒ the move committed
//!   but the republish may not have completed. Recovery re-installs the
//!   fence and records the move; the kernel finishes the republish when
//!   it reboots the TC.
//!
//! Moves may be operator-initiated (`Deployment::split_shard` /
//! `merge_shards` / `move_range`) or driven automatically by the
//! kernel's shard autopilot (`unbundled_kernel::RebalancePolicy`),
//! which watches per-shard commit rates, force-queue depth and the
//! [`KeySketch`](crate::stats::KeySketch) key-distribution window and
//! runs this same protocol — this module is the mechanism and stays
//! policy-free.

use crate::stats::TcStats;
use crate::tc::{Tc, TxnState};
use crate::tclog::TcLogRecord;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unbundled_core::{route_point, Key, Lsn, TcError, TcId, TxnId};

/// A fence over a key range moving away from this TC: installed with
/// the forced [`TcLogRecord::RebalanceIntent`], cleared when a shard
/// map with `epoch >= self.epoch` is installed.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceFence {
    /// Inclusive low end of the moving range.
    pub lo: u64,
    /// Inclusive high end of the moving range.
    pub hi: u64,
    /// The TC gaining the range.
    pub to: TcId,
    /// The epoch the republished map will carry.
    pub epoch: u64,
}

impl RebalanceFence {
    /// Whether the fence covers shard point `p`.
    pub fn covers(&self, p: u64) -> bool {
        p >= self.lo && p <= self.hi
    }
}

impl Tc {
    fn fence_timeout(&self) -> Duration {
        self.cfg.lock_timeout.unwrap_or(Duration::from_secs(2))
    }

    /// Local-path fence check, called before any lock is drawn for an
    /// op on `point`. Atomically (under the fence mutex) either records
    /// the point in the transaction's `shard_points` — making it
    /// visible to a concurrent drain check — or blocks until the fence
    /// clears. A transaction already holding a point inside the fence
    /// is a drain member and passes through. Timing out rolls the
    /// transaction back (like a lock timeout: the move must not be
    /// blockable forever by a queue of new entrants).
    ///
    /// Returns `Ok(true)` when the point was admitted (and recorded).
    /// Returns `Ok(false)` when the op *slept on a fence that then
    /// resolved*: the usual resolution is a completed move, which
    /// republished a map under which this TC no longer owns the point.
    /// The caller must re-resolve the owner and forward instead of
    /// executing here — the routing decision it made before sleeping
    /// was under the pre-move map, and lock and redo authority for the
    /// range may have moved away with the fence.
    pub(crate) fn fence_pass(
        &self,
        txn: TxnId,
        st: &Arc<Mutex<TxnState>>,
        point: u64,
    ) -> Result<bool, TcError> {
        let deadline = Instant::now() + self.fence_timeout();
        let mut fence = self.rebalance_fence.lock();
        let mut waited = false;
        loop {
            let blocked = match fence.as_ref() {
                Some(f) if f.covers(point) => {
                    let mut g = st.lock();
                    if g.shard_points.iter().any(|p| f.covers(*p)) {
                        g.shard_points.insert(point);
                        false
                    } else {
                        true
                    }
                }
                _ => {
                    if waited {
                        TcStats::bump(&self.stats().fence_reroutes);
                        return Ok(false);
                    }
                    st.lock().shard_points.insert(point);
                    false
                }
            };
            if !blocked {
                return Ok(true);
            }
            if self.fence_cv.wait_until(&mut fence, deadline).timed_out() {
                drop(fence);
                self.rollback(txn)?;
                return Err(TcError::LockTimeout(txn));
            }
            if self.ensure_available().is_err() {
                return Err(TcError::Unavailable(self.id()));
            }
            waited = true;
        }
    }

    /// Participant-side admission check for a forwarded op on `key`
    /// carrying the sender's map `epoch`. Runs *before* any branch
    /// state is created, so a rejection needs no repair at the sender:
    ///
    /// * a fence over the key's point blocks the forward (bounded)
    ///   unless the sender's existing branch here is a drain member;
    /// * once unfenced, an epoch mismatch — or a key this shard does
    ///   not own under its installed map — is rejected with
    ///   [`TcError::StaleShardMap`] instead of being executed on a
    ///   non-owning shard.
    pub(crate) fn check_forwarded(
        &self,
        coord: TcId,
        gtxn: TxnId,
        key: &Key,
        epoch: u64,
    ) -> Result<(), TcError> {
        let point = route_point(key);
        let deadline = Instant::now() + self.fence_timeout();
        let mut fence = self.rebalance_fence.lock();
        while let Some(f) = fence.as_ref().copied() {
            if !f.covers(point) {
                break;
            }
            let member = self
                .participants
                .lock()
                .get(&(coord, gtxn))
                .copied()
                .and_then(|local| self.txns.lock().get(&local).cloned())
                .map(|st| {
                    let mut g = st.lock();
                    if g.shard_points.iter().any(|p| f.covers(*p)) {
                        g.shard_points.insert(point);
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if member {
                return Ok(());
            }
            if self.fence_cv.wait_until(&mut fence, deadline).timed_out() {
                return Err(TcError::LockTimeout(gtxn));
            }
            self.ensure_available()
                .map_err(|_| TcError::Unavailable(self.id()))?;
        }
        drop(fence);
        let local_owner = {
            let g = self.shard_map.read();
            g.as_ref().is_some_and(|m| m.tc_for(key) == self.id())
        };
        if epoch != self.map_epoch() || !local_owner {
            TcStats::bump(&self.stats().stale_forward_rejects);
            return Err(TcError::StaleShardMap {
                tc: self.id(),
                epoch: self.map_epoch(),
            });
        }
        Ok(())
    }

    /// Clear a fence whose epoch the newly installed map covers, waking
    /// blocked work (called by [`Tc::set_shard_map`]).
    pub(crate) fn clear_fence_up_to(&self, epoch: u64) {
        let mut fence = self.rebalance_fence.lock();
        if fence.is_some_and(|f| f.epoch <= epoch) {
            *fence = None;
            drop(fence);
            self.fence_cv.notify_all();
        }
    }

    /// Wake fence waiters unconditionally (volatile crash: waiters must
    /// observe unavailability rather than sleep out their timeout).
    pub(crate) fn abandon_fence(&self) {
        *self.rebalance_fence.lock() = None;
        self.fence_cv.notify_all();
    }

    /// Phase 1 of a range move out of this TC: force the write-ahead
    /// [`TcLogRecord::RebalanceIntent`] and install the fence over
    /// `[lo, hi]`. The caller (the kernel's rebalance driver) must hold
    /// the current map's ownership of the whole range at this TC.
    pub fn begin_rebalance(&self, lo: u64, hi: u64, to: TcId, epoch: u64) -> Result<(), TcError> {
        self.ensure_available()?;
        debug_assert!(
            self.shard_map
                .read()
                .as_ref()
                .is_some_and(|m| m.range_containing(lo).2 == self.id()
                    && m.range_containing(hi).2 == self.id()),
            "rebalance source must own the moving range"
        );
        {
            let mut fence = self.rebalance_fence.lock();
            assert!(fence.is_none(), "one rebalance at a time per TC");
            self.log_bookkeeping(TcLogRecord::RebalanceIntent { lo, hi, to, epoch });
            self.force_log();
            *fence = Some(RebalanceFence { lo, hi, to, epoch });
        }
        Ok(())
    }

    /// Whether no live transaction holds a shard point inside
    /// `[lo, hi]` — the drain-complete condition. Checked under the
    /// fence mutex, which `fence_pass` also holds while recording
    /// points, so a transaction is either visible here or will block on
    /// the fence.
    pub fn rebalance_drained(&self, lo: u64, hi: u64) -> bool {
        let _fence = self.rebalance_fence.lock();
        let txns = self.txns.lock();
        !txns
            .values()
            .any(|st| st.lock().shard_points.iter().any(|p| *p >= lo && *p <= hi))
    }

    /// Phase 3: the range is drained — force the
    /// [`TcLogRecord::RebalanceDone`] that commits the move. Returns
    /// the recorded durability floor. The caller must republish the
    /// epoch-`epoch` map to every TC afterwards (installing it here
    /// clears the fence).
    pub fn finish_rebalance(&self, lo: u64, hi: u64, to: TcId, epoch: u64) -> Result<Lsn, TcError> {
        self.ensure_available()?;
        debug_assert!(
            self.rebalance_fence
                .lock()
                .is_some_and(|f| f.lo == lo && f.hi == hi && f.epoch == epoch),
            "finish_rebalance without a matching begin_rebalance"
        );
        // The handoff moves *redo authority* along with lock authority.
        // Per-TC redo streams carry no cross-TC order, so once the
        // target starts writing the range, a crash must never make this
        // TC redo its old ops over the target's newer ones (a replayed
        // insert would resurrect a row the new owner deleted).
        // Checkpoint until the granted RSSP covers everything logged
        // here — the drained fence guarantees no further ops enter the
        // range — so every pre-move effect is stable at the DCs and
        // permanently outside this TC's redo scan before Done commits
        // the move.
        let target = self.log.last().next();
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.checkpoint()? < target {
            if Instant::now() > deadline {
                return Err(TcError::Unavailable(self.id()));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut floor = self.log.stable();
        if let Some(f) = self.twopc_floor() {
            floor = floor.min(f);
        }
        if let Some(f) = self.shipper.replication_floor() {
            floor = floor.min(f);
        }
        self.log_bookkeeping(TcLogRecord::RebalanceDone {
            lo,
            hi,
            to,
            epoch,
            floor,
        });
        self.force_log();
        TcStats::bump(&self.stats().rebalances);
        Ok(floor)
    }

    /// The active fence, if any (diagnostics; a quiesced TC reports
    /// `None`).
    pub fn fence_info(&self) -> Option<RebalanceFence> {
        *self.rebalance_fence.lock()
    }

    /// A committed-but-unpublished move found during recovery:
    /// `(lo, hi, to, epoch)`. The kernel consumes this after rebooting
    /// the TC and finishes the map republish.
    pub fn take_recovered_rebalance(&self) -> Option<(u64, u64, TcId, u64)> {
        self.recovered_rebalance.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::TcConfig;
    use unbundled_core::{Key, TcShardMap};
    use unbundled_storage::LogStore;

    fn bare_tc(id: TcId) -> Arc<Tc> {
        let cfg = TcConfig {
            lock_timeout: Some(Duration::from_millis(50)),
            ..TcConfig::default()
        };
        Tc::new(id, cfg, Arc::new(LogStore::new()))
    }

    #[test]
    fn stale_epoch_forward_is_rejected_not_executed() {
        let tc = bare_tc(TcId(1));
        tc.set_shard_map(TcShardMap::even(&[TcId(1), TcId(2)]));
        // Key in TC1's half, but the sender claims epoch 7 — reject.
        let err = tc
            .check_forwarded(TcId(2), TxnId(9), &Key::from_u64(1), 7)
            .unwrap_err();
        assert_eq!(
            err,
            TcError::StaleShardMap {
                tc: TcId(1),
                epoch: 0
            }
        );
        // Matching epoch but a key TC1 does not own — also rejected.
        let err = tc
            .check_forwarded(TcId(2), TxnId(9), &Key::from_u64(u64::MAX - 1), 0)
            .unwrap_err();
        assert!(matches!(err, TcError::StaleShardMap { .. }));
        assert_eq!(tc.stats().snapshot().stale_forward_rejects, 2);
        // Matching epoch, owned key: admitted.
        tc.check_forwarded(TcId(2), TxnId(9), &Key::from_u64(1), 0)
            .unwrap();
    }

    #[test]
    fn fence_blocks_forward_until_timeout_then_map_install_unblocks() {
        let tc = bare_tc(TcId(1));
        let map = TcShardMap::even(&[TcId(1), TcId(2)]);
        tc.set_shard_map(map.clone());
        tc.begin_rebalance(0, 100, TcId(2), 1).unwrap();
        // A forward into the fenced range (non-member) times out.
        let err = tc
            .check_forwarded(TcId(2), TxnId(9), &Key::from_u64(5), 0)
            .unwrap_err();
        assert_eq!(err, TcError::LockTimeout(TxnId(9)));
        // Publishing the epoch-1 map clears the fence; the same forward
        // now fails the *epoch* test instead of blocking (sender must
        // re-route under the new map).
        tc.set_shard_map(map.with_range_owner(0, 100, TcId(2), 1));
        assert!(tc.fence_info().is_none());
        let err = tc
            .check_forwarded(TcId(2), TxnId(9), &Key::from_u64(5), 0)
            .unwrap_err();
        assert!(matches!(err, TcError::StaleShardMap { epoch: 1, .. }));
    }

    #[test]
    fn intent_then_done_records_are_forced() {
        let tc = bare_tc(TcId(1));
        tc.set_shard_map(TcShardMap::even(&[TcId(1), TcId(2)]));
        tc.begin_rebalance(0, 100, TcId(2), 1).unwrap();
        assert!(tc.rebalance_drained(0, 100));
        // The intent is forced (and stable) the moment the fence goes up.
        assert!(tc
            .log
            .store()
            .read_all_stable()
            .iter()
            .any(|(_, r)| matches!(
                r,
                TcLogRecord::RebalanceIntent {
                    lo: 0,
                    hi: 100,
                    to: TcId(2),
                    epoch: 1
                }
            )));
        tc.finish_rebalance(0, 100, TcId(2), 1).unwrap();
        // finish_rebalance checkpoints first (redo authority handoff),
        // which may truncate the prefix holding the intent — but Done is
        // forced after the checkpoint and must be stable.
        assert!(tc
            .log
            .store()
            .read_all_stable()
            .iter()
            .any(|(_, r)| matches!(r, TcLogRecord::RebalanceDone { epoch: 1, .. })));
        assert_eq!(tc.stats().snapshot().rebalances, 1);
    }
}
