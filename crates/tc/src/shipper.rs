//! Logical log shipping: the TC side of read-only DC replication.
//!
//! The paper leaves the TC with a purely logical, record-oriented redo
//! log — which is exactly a replication stream: any DC that replays it
//! converges to the primary's committed state. The [`Shipper`] turns the
//! TC log into that stream and drives it to registered replicas:
//!
//! * **Scan** — walk the *stable* log prefix once, in LSN order,
//!   buffering each transaction's redo operations until its outcome is
//!   known. A `Commit` emits the transaction's operations as one
//!   *stream group* positioned at the commit-record LSN; an `Abort`
//!   discards them (rolled-back work is never shipped, so a replica can
//!   never serve dirty or rolled-back data); a `RedoOnly` record
//!   (rollback compensation or post-commit version promotion) is
//!   emitted immediately at its own LSN. Lock-before-log ordering
//!   guarantees that conflicting operations appear in the stream in
//!   their serialization order: strict two-phase locking means a
//!   conflicting successor cannot even be logged until its predecessor's
//!   commit/abort released the lock, so emission points preserve every
//!   conflict.
//! * **Ship** — per replica, send the stream slice past its cursor as
//!   [`TcToDc::ShipBatch`] datagrams (filtered to the primaries the
//!   replica follows; batches never split a transaction's group, so a
//!   replica's applied frontier only ever rests on transaction
//!   boundaries). Batches ride the ordinary `DcLink` transports and are
//!   faultable; a cumulative [`ShipAck`] moves the cursor, and a stalled
//!   cursor (no ack progress within the resend interval) resends from
//!   the last acked position — go-back-N over an idempotent stream.
//! * **Retain / truncate** — emitted groups are retained until every
//!   replica has *durably* consumed them, and
//!   [`Shipper::replication_floor`] reports the oldest TC-log LSN still
//!   needed (unshipped buffered operations included) so checkpoint
//!   truncation never drops a record a registered replica has not
//!   consumed. After a TC crash the shipper state is rebuilt by
//!   re-scanning the retained log from its base; replicas suppress the
//!   resulting duplicates through the abstract-LSN discipline.
//!
//! [`ShipAck`]: unbundled_core::DcToTc::ShipAck

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unbundled_core::{DcId, LogicalOp, Lsn, TcId, TcToDc, TxnId};

use crate::routing::DcLink;
use crate::tclog::TcLogRecord;

/// Per-replica freshness introspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicaLag {
    /// The replica.
    pub dc: DcId,
    /// Applied stream frontier (reads are routed by this).
    pub applied: Lsn,
    /// Durable stream frontier (bounds TC log truncation).
    pub durable: Lsn,
    /// The primary-side stream end the frontiers chase.
    pub frontier: Lsn,
}

/// One emitted slice of the replication stream: a committed
/// transaction's redo operations (or a single redo-only record),
/// positioned at the LSN that made it shippable.
struct StreamGroup {
    /// Emission position: the commit-record LSN (or the redo-only
    /// record's own LSN). Replica frontiers advance in these units.
    pos: Lsn,
    /// Smallest TC-log LSN among the group's records — the truncation
    /// floor while any replica still needs this group.
    floor: Lsn,
    /// `(original LSN, destination primary, redo op)` in LSN order.
    records: Vec<(Lsn, DcId, LogicalOp)>,
}

struct ReplicaState {
    link: Arc<dyn DcLink>,
    /// Primaries whose operations this replica replays. Grows at
    /// promotion time: ops logged against a deposed primary's id are
    /// still part of the promoted lineage's history.
    sources: Vec<DcId>,
    /// Latest acked applied frontier (deliberately *latest*, not max: a
    /// rebooted replica legitimately regresses to its durable frontier
    /// and the shipper must resend from there).
    acked: Lsn,
    /// Latest acked durable frontier.
    durable: Lsn,
    /// Stream position shipped so far this session.
    sent: Lsn,
    /// Last time `acked` moved (stall detection for go-back-N resend).
    last_progress: Instant,
}

struct ShipperInner {
    /// Last scanned stable log sequence number; also the stream end.
    scan_pos: u64,
    /// Per-transaction redo buffers awaiting an outcome.
    pending: HashMap<TxnId, Vec<(Lsn, DcId, LogicalOp)>>,
    /// Emitted groups retained until every replica durably consumed them.
    stream: Vec<StreamGroup>,
    replicas: HashMap<DcId, ReplicaState>,
}

/// The TC's replication shipper. Thread-safe; the lock is never held
/// across a transport send (inline links deliver `ShipAck` on the
/// sending thread, which re-enters [`Shipper::on_ack`]).
pub(crate) struct Shipper {
    inner: Mutex<ShipperInner>,
}

/// Max records per `ShipBatch` datagram (groups are never split, so a
/// single oversized transaction still travels whole).
const BATCH_RECORDS: usize = 64;

impl Shipper {
    pub(crate) fn new() -> Shipper {
        Shipper {
            inner: Mutex::new(ShipperInner {
                scan_pos: 0,
                pending: HashMap::new(),
                stream: Vec::new(),
                replicas: HashMap::new(),
            }),
        }
    }

    /// Register `replica` as a read-only follower of `sources` (usually
    /// one primary; promotion extends the lineage). The replica must be
    /// no staler than the TC log's base — register replicas before the
    /// first truncating checkpoint, or re-seed them first.
    pub(crate) fn register(&self, replica: DcId, sources: &[DcId], link: Arc<dyn DcLink>) {
        let mut g = self.inner.lock();
        g.replicas.insert(
            replica,
            ReplicaState {
                link,
                sources: sources.to_vec(),
                acked: Lsn(0),
                durable: Lsn(0),
                sent: Lsn(0),
                last_progress: Instant::now(),
            },
        );
        // Groups durably consumed by the *previously* registered
        // replicas have been pruned from the in-memory stream; a fresh
        // follower starting at cursor 0 must not be handed a stream
        // with a silent hole. Rebuild from the log base on the next
        // ship — stream positions are log LSNs, so existing cursors
        // stay valid, and re-emitted already-consumed groups are
        // re-pruned by the next ack round.
        g.scan_pos = 0;
        g.pending.clear();
        g.stream.clear();
    }

    pub(crate) fn has_replicas(&self) -> bool {
        !self.inner.lock().replicas.is_empty()
    }

    /// Handle a cumulative `ShipAck` from `replica`.
    pub(crate) fn on_ack(&self, replica: DcId, applied: Lsn, durable: Lsn) {
        let mut g = self.inner.lock();
        if let Some(r) = g.replicas.get_mut(&replica) {
            if applied != r.acked {
                r.last_progress = Instant::now();
            }
            if applied < r.acked {
                // The replica rebooted and regressed to its durable
                // frontier: resend from there straight away.
                r.sent = applied;
            }
            r.acked = applied;
            r.durable = durable;
        }
        let min_durable = g
            .replicas
            .values()
            .map(|r| r.durable)
            .min()
            .unwrap_or(Lsn::MAX);
        g.stream.retain(|grp| grp.pos > min_durable);
    }

    /// Scan newly stable log records into the stream, then ship every
    /// replica's backlog. Returns the stream end (ship frontier).
    /// Sends happen outside the shipper lock.
    pub(crate) fn ship(
        &self,
        tc: TcId,
        log: &Arc<unbundled_storage::LogStore<TcLogRecord>>,
        resend_interval: Duration,
        stats: &crate::stats::TcStats,
    ) -> Lsn {
        let stable = log.stable_seq();
        let mut outbound: Vec<(Arc<dyn DcLink>, TcToDc)> = Vec::new();
        let end = {
            let mut g = self.inner.lock();
            if g.replicas.is_empty() {
                return Lsn(stable);
            }
            if stable > g.scan_pos {
                let records = log.read_range(g.scan_pos + 1, stable);
                for (seq, rec) in records {
                    Self::classify(&mut g, seq, rec);
                }
                g.scan_pos = stable;
            }
            let end = Lsn(g.scan_pos);
            let eosl = Lsn(stable);
            let replicas: Vec<DcId> = g.replicas.keys().copied().collect();
            for id in replicas {
                Self::plan_replica(&mut g, tc, id, end, eosl, resend_interval, &mut outbound);
            }
            end
        };
        for (link, msg) in outbound {
            if let TcToDc::ShipBatch { groups, .. } = &msg {
                crate::stats::TcStats::bump(&stats.ship_batches);
                let records: usize = groups.iter().map(|(_, r)| r.len()).sum();
                crate::stats::TcStats::add(&stats.ship_records, records as u64);
                let _s = unbundled_obs::span1("tc.ship", "records", records as u64);
                let sent = Instant::now();
                link.send(msg);
                stats.ship_batch_ns.record(sent.elapsed());
                continue;
            }
            link.send(msg);
        }
        end
    }

    fn classify(g: &mut ShipperInner, seq: u64, rec: TcLogRecord) {
        let lsn = Lsn(seq);
        match rec {
            TcLogRecord::Begin { txn } => {
                g.pending.entry(txn).or_default();
            }
            TcLogRecord::Op { txn, dc, op, .. } => {
                g.pending.entry(txn).or_default().push((lsn, dc, op));
            }
            TcLogRecord::RedoOnly { dc, op, .. } => {
                // Compensations and promotions are shippable the moment
                // they are stable: a compensation's original may never
                // have shipped (uncommitted work is withheld), in which
                // case replaying the inverse is a deterministic no-op or
                // benign logical error at the replica.
                g.stream.push(StreamGroup {
                    pos: lsn,
                    floor: lsn,
                    records: vec![(lsn, dc, op)],
                });
            }
            // Replicas must only ever see *decided* work. A cross-TC
            // branch stays buffered through its Prepare — an in-doubt
            // branch may yet abort — and is emitted (or discarded) only
            // at its local resolution record, exactly like a
            // single-shard transaction at Commit/Abort. The coordinator
            // side's CommitDecision is its commit point and emits there.
            TcLogRecord::Commit { txn }
            | TcLogRecord::CommitDecision { txn, .. }
            | TcLogRecord::ParticipantCommit { txn } => {
                if let Some(ops) = g.pending.remove(&txn) {
                    if !ops.is_empty() {
                        let floor = ops.iter().map(|(l, _, _)| *l).min().unwrap_or(lsn);
                        g.stream.push(StreamGroup {
                            pos: lsn,
                            floor,
                            records: ops,
                        });
                    }
                }
            }
            TcLogRecord::Abort { txn } | TcLogRecord::ParticipantAbort { txn } => {
                g.pending.remove(&txn);
            }
            TcLogRecord::Prepare { .. }
            | TcLogRecord::Checkpoint { .. }
            | TcLogRecord::Promote { .. }
            | TcLogRecord::PromoteIntent { .. }
            | TcLogRecord::RebalanceIntent { .. }
            | TcLogRecord::RebalanceDone { .. } => {}
        }
    }

    /// The applied frontier acked by one replica (`None` if unknown).
    pub(crate) fn applied_of(&self, replica: DcId) -> Option<Lsn> {
        self.inner.lock().replicas.get(&replica).map(|r| r.acked)
    }

    /// Stable operations of transactions whose outcome has not been
    /// scanned yet (active as of the stable log end), in LSN order —
    /// promotion must replay exactly these on top of the shipped stream
    /// (resolved history is covered by the stream; re-executing it raw
    /// would corrupt the replica).
    pub(crate) fn pending_ops(&self) -> Vec<(Lsn, DcId, LogicalOp)> {
        let g = self.inner.lock();
        let mut out: Vec<(Lsn, DcId, LogicalOp)> = g
            .pending
            .values()
            .flat_map(|ops| ops.iter().cloned())
            .collect();
        out.sort_by_key(|(l, _, _)| *l);
        out
    }

    /// Build the outbound `ShipBatch` datagrams for one replica.
    fn plan_replica(
        g: &mut ShipperInner,
        tc: TcId,
        id: DcId,
        end: Lsn,
        eosl: Lsn,
        resend_interval: Duration,
        outbound: &mut Vec<(Arc<dyn DcLink>, TcToDc)>,
    ) {
        let (mut cursor, sources, link) = {
            let r = g.replicas.get_mut(&id).expect("replica exists");
            if r.sent > r.acked && r.last_progress.elapsed() >= resend_interval {
                // Go-back-N: something between acked and sent was lost
                // (or an ack went missing). Resend from the ack; the
                // replica suppresses duplicates via the abLSN test.
                r.sent = r.acked;
                r.last_progress = Instant::now();
            }
            if r.sent >= end {
                return;
            }
            (r.sent, r.sources.clone(), r.link.clone())
        };
        let start = cursor;
        let mut batch: Vec<(Lsn, Vec<(Lsn, LogicalOp)>)> = Vec::new();
        let mut batch_records = 0usize;
        let mut prev = cursor;
        for grp in g.stream.iter().filter(|grp| grp.pos > start) {
            let mine: Vec<(Lsn, LogicalOp)> = grp
                .records
                .iter()
                .filter(|(_, dc, _)| sources.contains(dc))
                .map(|(l, _, op)| (*l, op.clone()))
                .collect();
            if !batch.is_empty() && batch_records + mine.len() > BATCH_RECORDS {
                outbound.push((
                    link.clone(),
                    TcToDc::ShipBatch {
                        tc,
                        prev,
                        upto: cursor,
                        eosl,
                        groups: std::mem::take(&mut batch),
                        // Only the plan's final batch (which runs the
                        // cursor to the stream end) carries a prune
                        // bound: a mid-plan bound would have to stay
                        // below every unsent group's floor anyway.
                        prune: Lsn(0),
                    },
                ));
                batch_records = 0;
                prev = cursor;
            }
            if !mine.is_empty() {
                batch_records += mine.len();
                batch.push((grp.pos, mine));
            }
            cursor = grp.pos;
        }
        // Final batch always runs the frontier out to the stream end so
        // the replica's freshness horizon tracks commits on *other*
        // partitions (and empty logs still bump frontiers). It also
        // carries the in-set prune bound (see `Self::prune_bound`):
        // once the replica has applied through `end`, every shipped
        // operation LSN at or below the bound is covered, and nothing
        // at or below it can ever arrive raw.
        let prune = Self::prune_bound(g, end);
        outbound.push((
            link.clone(),
            TcToDc::ShipBatch {
                tc,
                prev,
                upto: end,
                eosl,
                groups: batch,
                prune,
            },
        ));
        let r = g.replicas.get_mut(&id).expect("replica exists");
        r.sent = end;
    }

    /// The largest operation LSN a replica that has applied the whole
    /// stream through `end` may fold under its abstract-LSN low-water
    /// marks. Everything at or below the bound is *settled* from the
    /// replica's point of view: shipped-and-applied, or part of an
    /// aborted transaction that will never ship. The bound therefore
    /// stays strictly below
    ///
    /// * the smallest buffered LSN of a transaction whose outcome is
    ///   not yet scanned (promotion replays exactly these raw, at
    ///   their original LSNs — they must not be swallowed as
    ///   duplicates), and
    /// * the unscanned stable tail (`scan_pos + 1`), whose future
    ///   groups may reach back no further than their own LSNs.
    fn prune_bound(g: &ShipperInner, end: Lsn) -> Lsn {
        let pending_floor = g
            .pending
            .values()
            .flat_map(|ops| ops.iter().map(|(l, _, _)| *l))
            .min();
        let horizon = [pending_floor, Some(Lsn(g.scan_pos + 1))]
            .into_iter()
            .flatten()
            .min()
            .expect("scan floor always present");
        Lsn(horizon.0.saturating_sub(1)).min(end)
    }

    /// The oldest TC-log LSN replication still needs (`None` when no
    /// replica is registered): retained groups a replica has yet to
    /// durably consume, plus buffered operations of transactions whose
    /// outcome has not been scanned. Checkpoint truncation must keep
    /// every record at or above this.
    pub(crate) fn replication_floor(&self) -> Option<Lsn> {
        let g = self.inner.lock();
        if g.replicas.is_empty() {
            return None;
        }
        let min_durable = g
            .replicas
            .values()
            .map(|r| r.durable)
            .min()
            .unwrap_or(Lsn(0));
        let group_floor = g
            .stream
            .iter()
            .filter(|grp| grp.pos > min_durable)
            .map(|grp| grp.floor)
            .min();
        let pending_floor = g
            .pending
            .values()
            .flat_map(|ops| ops.iter().map(|(l, _, _)| *l))
            .min();
        let scan_floor = Lsn(g.scan_pos + 1);
        Some(
            [group_floor, pending_floor, Some(scan_floor)]
                .into_iter()
                .flatten()
                .min()
                .expect("scan floor always present"),
        )
    }

    /// Pick a replica of `primary` whose applied frontier covers
    /// `required`, rotating across qualifying replicas for load
    /// balancing. `None` = route to the primary.
    pub(crate) fn pick_replica(
        &self,
        primary: DcId,
        required: Lsn,
        rotation: u64,
    ) -> Option<(DcId, Arc<dyn DcLink>)> {
        let g = self.inner.lock();
        let qualifying: Vec<(DcId, &ReplicaState)> = {
            let mut v: Vec<_> = g
                .replicas
                .iter()
                .filter(|(_, r)| r.sources.contains(&primary) && r.acked >= required)
                .map(|(id, r)| (*id, r))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        if qualifying.is_empty() {
            return None;
        }
        let (id, r) = qualifying[(rotation % qualifying.len() as u64) as usize];
        Some((id, r.link.clone()))
    }

    /// Per-replica lag snapshot (freshness introspection).
    pub(crate) fn lags(&self) -> Vec<ReplicaLag> {
        let g = self.inner.lock();
        let frontier = Lsn(g.scan_pos);
        let mut v: Vec<ReplicaLag> = g
            .replicas
            .iter()
            .map(|(id, r)| ReplicaLag {
                dc: *id,
                applied: r.acked,
                durable: r.durable,
                frontier,
            })
            .collect();
        v.sort_by_key(|l| l.dc);
        v
    }

    /// Promotion bookkeeping: drop `promoted` from the replica set and
    /// extend every surviving follower of `old` to also follow the
    /// promoted id (ops keep being logged against whichever id routed
    /// them, so followers need the whole lineage). Returns the promoted
    /// replica's link, if registered.
    pub(crate) fn promote(&self, old: DcId, promoted: DcId) -> Option<Arc<dyn DcLink>> {
        let mut g = self.inner.lock();
        let link = g.replicas.remove(&promoted).map(|r| r.link);
        for r in g.replicas.values_mut() {
            if r.sources.contains(&old) && !r.sources.contains(&promoted) {
                r.sources.push(promoted);
            }
        }
        link
    }

    /// The link a registered replica was wired with (promotion needs it
    /// to re-register the promoted DC as a primary).
    pub(crate) fn replica_link(&self, replica: DcId) -> Option<Arc<dyn DcLink>> {
        self.inner
            .lock()
            .replicas
            .get(&replica)
            .map(|r| r.link.clone())
    }
}
