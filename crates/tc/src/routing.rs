//! Routing and range-locking configuration.
//!
//! The TC addresses DCs purely logically: a table is either hosted by a
//! single DC or logically partitioned across several (Figure 2 partitions
//! `Movies`/`Reviews` by `MId` across DC1/DC2 and `Users`/`MyReviews` by
//! `UId` on DC3). Partitioning is by the key's leading `u64` component,
//! which is how all of the paper's example schemas cluster.

use std::sync::Arc;
use unbundled_core::{range_owner, range_owners, route_point, DcId, Key, TcToDc};

/// Transport-facing half: something that can carry a message to a DC.
/// Replies flow back through `Tc::deliver`.
pub trait DcLink: Send + Sync {
    /// Fire-and-forget send (the transport may delay / reorder / drop
    /// `Perform` messages; control messages are reliable).
    fn send(&self, msg: TcToDc);
}

/// Where a table's records live.
#[derive(Clone)]
pub enum TableRoute {
    /// Entire table on one DC.
    Single(DcId),
    /// Partitioned by the key's leading u64: entry `(upper, dc)` covers
    /// prefixes `< upper`; entries sorted ascending, last must be
    /// `u64::MAX`.
    Partitioned(Arc<Vec<(u64, DcId)>>),
}

impl TableRoute {
    /// DC hosting `key`. Point placement (numeric prefix, or a stable
    /// hash for short keys) is [`route_point`] — the *same* helper the
    /// TC shard map uses, so DC routing and TC sharding can never
    /// disagree about where a non-numeric key lives.
    pub fn dc_for(&self, key: &Key) -> DcId {
        match self {
            TableRoute::Single(dc) => *dc,
            TableRoute::Partitioned(parts) => range_owner(parts, route_point(key)),
        }
    }

    /// Failover rerouting: every range this route maps to `old` now maps
    /// to `new` (the DC promoted in its place).
    pub fn replace_dc(&mut self, old: DcId, new: DcId) {
        match self {
            TableRoute::Single(dc) => {
                if *dc == old {
                    *dc = new;
                }
            }
            TableRoute::Partitioned(parts) => {
                if parts.iter().any(|(_, dc)| *dc == old) {
                    let rewritten: Vec<(u64, DcId)> = parts
                        .iter()
                        .map(|(upper, dc)| (*upper, if *dc == old { new } else { *dc }))
                        .collect();
                    *parts = Arc::new(rewritten);
                }
            }
        }
    }

    /// DCs whose ranges intersect `[low, high)`, in key order. Range
    /// resolution (including the last-partition fallback for inverted
    /// bounds) is shared with the TC shard map via
    /// [`unbundled_core::range_owners`].
    pub fn dcs_for_range(&self, low: &Key, high: Option<&Key>) -> Vec<DcId> {
        match self {
            TableRoute::Single(dc) => vec![*dc],
            TableRoute::Partitioned(parts) => {
                // Scans are byte-ordered, but hashed placement of short
                // keys is not order-preserving — so a bound without a
                // numeric prefix widens the consulted set to *all*
                // partitions (a harmless superset: the DCs filter by the
                // actual byte range).
                match (low.u64_prefix(), high.map(|h| h.u64_prefix())) {
                    (Some(lo), None) => range_owners(parts, lo, u64::MAX),
                    (Some(lo), Some(Some(hi))) => range_owners(parts, lo, hi),
                    _ => range_owners(parts, 0, u64::MAX),
                }
            }
        }
    }
}

/// A static partitioning of a table's key space for the range-lock
/// protocol of Section 3.1 ("Range locks: Introduce explicit range locks
/// that partition the keys of any table").
#[derive(Clone, Debug)]
pub struct RangePartitioner {
    /// Sorted exclusive upper bounds; partition `i` covers
    /// `[bounds[i-1], bounds[i])`, the last partition is open-ended.
    bounds: Vec<Key>,
}

impl RangePartitioner {
    /// Build from sorted exclusive upper bounds (the last partition is
    /// everything at or beyond the final bound).
    pub fn new(bounds: Vec<Key>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        RangePartitioner { bounds }
    }

    /// Evenly partition the `u64` key space into `n` ranges.
    pub fn even_u64(n: u32) -> Self {
        let n = n.max(1) as u64;
        let step = u64::MAX / n;
        let bounds = (1..n).map(|i| Key::from_u64(i * step)).collect();
        RangePartitioner::new(bounds)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }

    /// The partition containing `key`.
    pub fn partition_of(&self, key: &Key) -> u32 {
        match self.bounds.binary_search(key) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// All partitions intersecting `[low, high)` (`high = None` = +∞).
    pub fn partitions_overlapping(
        &self,
        low: &Key,
        high: Option<&Key>,
    ) -> std::ops::RangeInclusive<u32> {
        let first = self.partition_of(low);
        let last = match high {
            None => self.partitions() - 1,
            Some(h) => {
                // high is exclusive; the partition containing the last
                // relevant key.
                let p = self.partition_of(h);
                // if h is exactly a bound, partition_of gives the next
                // partition, which the range does not touch.
                if self.bounds.binary_search(h).is_ok() && p > 0 {
                    p - 1
                } else {
                    p
                }
            }
        };
        first..=last.max(first)
    }
}

/// Which Section 3.1 protocol guards range scans.
#[derive(Clone)]
pub enum ScanProtocol {
    /// Fetch-ahead: speculative key probes, lock the returned keys (plus
    /// the range-edge key), verify, re-probe on mismatch.
    FetchAhead {
        /// Keys probed (and locked) per round trip.
        batch: usize,
    },
    /// Static range locks over a fixed partitioning of the key space.
    StaticRanges(Arc<RangePartitioner>),
}

impl ScanProtocol {
    /// Default fetch-ahead with a sensible batch.
    pub fn fetch_ahead() -> Self {
        ScanProtocol::FetchAhead { batch: 32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_route() {
        let r = TableRoute::Single(DcId(3));
        assert_eq!(r.dc_for(&Key::from_u64(1)), DcId(3));
        assert_eq!(r.dcs_for_range(&Key::empty(), None), vec![DcId(3)]);
    }

    #[test]
    fn partitioned_route_by_prefix() {
        let r = TableRoute::Partitioned(Arc::new(vec![(100, DcId(1)), (u64::MAX, DcId(2))]));
        assert_eq!(r.dc_for(&Key::from_u64(5)), DcId(1));
        assert_eq!(r.dc_for(&Key::from_pair(99, 7)), DcId(1));
        assert_eq!(r.dc_for(&Key::from_u64(100)), DcId(2));
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(50), Some(&Key::from_u64(150))),
            vec![DcId(1), DcId(2)]
        );
        assert_eq!(r.dcs_for_range(&Key::from_u64(100), None), vec![DcId(2)]);
    }

    #[test]
    fn dcs_for_range_u64_max_boundary_reaches_the_last_partition() {
        let r = TableRoute::Partitioned(Arc::new(vec![
            (100, DcId(1)),
            (1000, DcId(2)),
            (u64::MAX, DcId(3)),
        ]));
        // An explicit u64::MAX high bound must cover every partition the
        // low bound allows, including the open-ended last one.
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(0), Some(&Key::from_u64(u64::MAX))),
            vec![DcId(1), DcId(2), DcId(3)]
        );
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(u64::MAX), Some(&Key::from_u64(u64::MAX))),
            vec![DcId(3)],
            "a degenerate [MAX, MAX) range still routes to the hosting DC"
        );
        // The key exactly at u64::MAX lives in the last partition.
        assert_eq!(r.dc_for(&Key::from_u64(u64::MAX - 1)), DcId(3));
    }

    #[test]
    fn dcs_for_range_open_ended_high_covers_every_partition_from_low() {
        let r = TableRoute::Partitioned(Arc::new(vec![
            (100, DcId(1)),
            (1000, DcId(2)),
            (u64::MAX, DcId(3)),
        ]));
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(0), None),
            vec![DcId(1), DcId(2), DcId(3)]
        );
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(100), None),
            vec![DcId(2), DcId(3)]
        );
        assert_eq!(r.dcs_for_range(&Key::from_u64(5000), None), vec![DcId(3)]);
        // A low bound exactly on a partition edge excludes the partition
        // below the edge.
        assert_eq!(r.dcs_for_range(&Key::from_u64(1000), None), vec![DcId(3)]);
    }

    #[test]
    fn dcs_for_range_inverted_bounds_yield_a_harmless_fallback() {
        let r = TableRoute::Partitioned(Arc::new(vec![(100, DcId(1)), (u64::MAX, DcId(2))]));
        // hi < lo describes an empty range; the router must still return
        // a DC (callers iterate it and read zero rows) rather than an
        // empty set, and must never panic.
        let got = r.dcs_for_range(&Key::from_u64(500), Some(&Key::from_u64(50)));
        assert_eq!(
            got,
            vec![DcId(2)],
            "empty range falls back to the last partition"
        );
        // An inverted range entirely inside one partition degenerates to
        // that partition.
        let got = r.dcs_for_range(&Key::from_u64(80), Some(&Key::from_u64(20)));
        assert_eq!(got, vec![DcId(1)]);
        let single = TableRoute::Single(DcId(7));
        assert_eq!(
            single.dcs_for_range(&Key::from_u64(9), Some(&Key::from_u64(1))),
            vec![DcId(7)]
        );
    }

    #[test]
    fn adjacent_ranges_share_no_keys() {
        // Two partitions meeting at 100: the bound itself belongs to the
        // upper partition, never both — shared-helper semantics the TC
        // shard map relies on for lock safety.
        let r = TableRoute::Partitioned(Arc::new(vec![(100, DcId(1)), (u64::MAX, DcId(2))]));
        assert_eq!(r.dc_for(&Key::from_u64(99)), DcId(1));
        assert_eq!(r.dc_for(&Key::from_u64(100)), DcId(2));
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(0), Some(&Key::from_u64(99))),
            vec![DcId(1)],
            "a high bound strictly below the edge stays in the lower partition"
        );
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(0), Some(&Key::from_u64(100))),
            vec![DcId(1), DcId(2)],
            "a high bound on the edge key consults the partition that owns it"
        );
    }

    #[test]
    fn singleton_range_resolves_to_one_dc() {
        let r = TableRoute::Partitioned(Arc::new(vec![
            (100, DcId(1)),
            (1000, DcId(2)),
            (u64::MAX, DcId(3)),
        ]));
        // A degenerate [k, k] "range" (single point) touches exactly the
        // partition containing k.
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(500), Some(&Key::from_u64(500))),
            vec![DcId(2)]
        );
        assert_eq!(
            r.dcs_for_range(&Key::from_u64(0), Some(&Key::from_u64(0))),
            vec![DcId(1)]
        );
    }

    #[test]
    fn partitioner_assigns_in_order() {
        let p = RangePartitioner::new(vec![Key::from_u64(10), Key::from_u64(20)]);
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.partition_of(&Key::from_u64(5)), 0);
        assert_eq!(p.partition_of(&Key::from_u64(10)), 1);
        assert_eq!(p.partition_of(&Key::from_u64(15)), 1);
        assert_eq!(p.partition_of(&Key::from_u64(25)), 2);
    }

    #[test]
    fn partitions_overlapping_ranges() {
        let p = RangePartitioner::new(vec![Key::from_u64(10), Key::from_u64(20)]);
        assert_eq!(
            p.partitions_overlapping(&Key::from_u64(5), Some(&Key::from_u64(15))),
            0..=1
        );
        assert_eq!(
            p.partitions_overlapping(&Key::from_u64(12), Some(&Key::from_u64(20))),
            1..=1
        );
        assert_eq!(p.partitions_overlapping(&Key::from_u64(0), None), 0..=2);
    }

    #[test]
    fn even_u64_partitioning() {
        let p = RangePartitioner::even_u64(8);
        assert_eq!(p.partitions(), 8);
        assert_eq!(p.partition_of(&Key::from_u64(0)), 0);
        assert_eq!(p.partition_of(&Key::from_u64(u64::MAX)), 7);
    }
}
