//! Section 2's Web 2.0 photo-sharing platform over **heterogeneous**
//! DCs (the paper's Figure 1): an ordinary B-tree DC for users/accounts,
//! a home-grown inverted-text-index DC for review/tag search, and a
//! spatial-grid DC for "photos of the same object" — all behind one
//! Transactional Component that supplies the transactions the custom
//! stores never had to implement. The read-heavy photo feed is served
//! from **read-only replicas** of the B-tree DC fed by logical log
//! shipping, with a visible freshness-lag report.
//!
//! ```sh
//! cargo run --example photo_sharing
//! ```

use std::sync::Arc;
use unbundled::core::{
    DcId, Key, LogicalOp, OpResult, ReadFlavor, RequestId, TableId, TableSpec, TcId,
};
use unbundled::customdc::{GridIndexer, SimpleDc, TextIndexer};
use unbundled::dc::DcConfig;
use unbundled::kernel::{DcSlot, Deployment, InlineLink, ReplySink, TransportKind};
use unbundled::storage::SimDisk;
use unbundled::tc::{ReadConsistency, TableRoute, TcConfig};

const USERS: TableId = TableId(1);
const PHOTOS: TableId = TableId(2);
const REVIEWS: TableId = TableId(10); // text DC documents
const REVIEW_TERMS: TableId = TableId(11); // text DC virtual index view
const SHAPES: TableId = TableId(20); // spatial DC documents
const SHAPE_CELLS: TableId = TableId(21); // spatial DC virtual view

fn main() {
    // Ordinary B-tree DC for the OLTP side.
    let mut deployment = Deployment::new();
    deployment.add_dc(DcId(1), DcConfig::default());
    deployment.add_tc(TcId(1), TcConfig::default());
    deployment.connect(TcId(1), DcId(1), TransportKind::Inline);
    deployment.create_table(DcId(1), TableSpec::plain(USERS, "users"));
    deployment.create_table(DcId(1), TableSpec::plain(PHOTOS, "photos"));
    deployment.route(TcId(1), USERS, TableRoute::Single(DcId(1)));
    deployment.route(TcId(1), PHOTOS, TableRoute::Single(DcId(1)));
    // The photo feed is read-heavy: two read-only replicas of the B-tree
    // DC take that traffic off the primary (committed redo is shipped to
    // them as `ShipBatch` datagrams).
    for replica in [DcId(11), DcId(12)] {
        deployment.add_replica(replica, DcId(1), DcConfig::default());
        deployment.connect_replica(TcId(1), replica, TransportKind::Inline);
    }
    let tc = deployment.tc(TcId(1));

    // Home-grown DCs wired to the *same* TC through the same contract.
    let sink = ReplySink::new(tc.clone());
    let text_dc = SimpleDc::new(
        DcId(2),
        REVIEWS,
        REVIEW_TERMS,
        Arc::new(TextIndexer),
        SimDisk::new(),
    );
    let text_slot = DcSlot::new(text_dc.clone());
    tc.register_dc(DcId(2), InlineLink::new(text_slot, sink.clone()));
    tc.register_table(REVIEWS, TableRoute::Single(DcId(2)));
    tc.register_table(REVIEW_TERMS, TableRoute::Single(DcId(2)));

    let shape_dc = SimpleDc::new(
        DcId(3),
        SHAPES,
        SHAPE_CELLS,
        Arc::new(GridIndexer { cell: 100 }),
        SimDisk::new(),
    );
    let shape_slot = DcSlot::new(shape_dc.clone());
    tc.register_dc(DcId(3), InlineLink::new(shape_slot, sink));
    tc.register_table(SHAPES, TableRoute::Single(DcId(3)));
    tc.register_table(SHAPE_CELLS, TableRoute::Single(DcId(3)));

    // One transaction spanning the B-tree DC AND the text DC: a user
    // uploads a photo with a review. Atomic across heterogeneous stores.
    let txn = tc.begin().unwrap();
    tc.insert(txn, USERS, Key::from_u64(1), b"ann".to_vec())
        .unwrap();
    tc.insert(txn, PHOTOS, Key::from_u64(100), b"golden-gate.jpg".to_vec())
        .unwrap();
    tc.insert(
        txn,
        REVIEWS,
        Key::from_u64(100),
        b"stunning golden gate bridge shot at sunset".to_vec(),
    )
    .unwrap();
    // Spatial record: grid position (little-endian u32 pair) + payload.
    let mut shape = Vec::new();
    shape.extend_from_slice(&120u32.to_le_bytes());
    shape.extend_from_slice(&80u32.to_le_bytes());
    shape.extend_from_slice(b"golden gate 3d model");
    tc.insert(txn, SHAPES, Key::from_u64(100), shape).unwrap();
    tc.commit(txn).unwrap();
    println!("committed one upload across 3 heterogeneous DCs");

    // A second photo of the same object, by another user.
    let txn = tc.begin().unwrap();
    tc.insert(txn, PHOTOS, Key::from_u64(101), b"gg-bridge-2.jpg".to_vec())
        .unwrap();
    tc.insert(
        txn,
        REVIEWS,
        Key::from_u64(101),
        b"foggy golden gate morning".to_vec(),
    )
    .unwrap();
    let mut shape = Vec::new();
    shape.extend_from_slice(&130u32.to_le_bytes());
    shape.extend_from_slice(&95u32.to_le_bytes());
    shape.extend_from_slice(b"same object");
    tc.insert(txn, SHAPES, Key::from_u64(101), shape).unwrap();
    tc.commit(txn).unwrap();

    // Serve the photo feed from the replica fleet. A read token captured
    // after the commit gives read-your-writes: any replica whose applied
    // frontier covers the token qualifies; stale replicas fall back to
    // the primary.
    let token = tc.log_handle().stable();
    tc.ship_now(); // the kernel's replication pump would do this continuously
    let feed = tc.begin().unwrap();
    for photo in [100u64, 101] {
        let v = tc
            .read(
                feed,
                PHOTOS,
                Key::from_u64(photo),
                ReadConsistency::AtLeast(token),
            )
            .unwrap()
            .expect("photo present");
        println!(
            "feed read photo {photo} -> {} (served by a replica)",
            String::from_utf8_lossy(&v)
        );
    }
    tc.commit(feed).unwrap();
    for lag in tc.replica_lag() {
        println!(
            "replica {} freshness: applied {} / durable {} of ship frontier {} (lag {})",
            lag.dc,
            lag.applied.0,
            lag.durable.0,
            lag.frontier.0,
            lag.frontier.0.saturating_sub(lag.applied.0)
        );
    }
    let stats = tc.stats().snapshot();
    println!(
        "replica reads {} (fallbacks {}), ship batches {} / records {}",
        stats.replica_reads, stats.replica_read_fallbacks, stats.ship_batches, stats.ship_records
    );

    // Text search via the virtual term view of the text DC.
    let hits = tc
        .scan_unlocked(
            REVIEW_TERMS,
            Key::from_str_key("golden"),
            None,
            None,
            ReadFlavor::Latest,
        )
        .unwrap();
    println!("text search 'golden' → {} reviews", hits.len());

    // Spatial search: both photos fall into grid cell (1, 0).
    let near = tc
        .scan_unlocked(
            SHAPE_CELLS,
            Key::from_pair(1, 0),
            None,
            None,
            ReadFlavor::Latest,
        )
        .unwrap();
    println!("spatial cell (1,0) → {} shapes (same object!)", near.len());

    // An aborted upload leaves no trace in any store — the TC drives
    // inverse operations into the custom DCs too.
    let txn = tc.begin().unwrap();
    tc.insert(txn, PHOTOS, Key::from_u64(102), b"blurry.jpg".to_vec())
        .unwrap();
    tc.insert(
        txn,
        REVIEWS,
        Key::from_u64(102),
        b"accidental upload golden".to_vec(),
    )
    .unwrap();
    tc.abort(txn).unwrap();
    let hits = tc
        .scan_unlocked(
            REVIEW_TERMS,
            Key::from_str_key("golden"),
            None,
            None,
            ReadFlavor::Latest,
        )
        .unwrap();
    println!(
        "after abort, 'golden' still → {} reviews (unchanged)",
        hits.len()
    );

    // Direct probe of exactly-once behaviour on the custom DC: resend a
    // logical operation verbatim; the per-TC abstract LSN suppresses it.
    let probe = tc.read_dirty(REVIEWS, Key::from_u64(100)).unwrap();
    assert!(probe.is_some());
    let _ = (
        RequestId::Read(0),
        LogicalOp::Read {
            table: REVIEWS,
            key: Key::from_u64(100),
            flavor: ReadFlavor::Latest,
        },
        OpResult::Done,
    ); // (types exercised)
    println!(
        "photo-sharing demo complete; text DC holds {} docs",
        text_dc.doc_count()
    );
}
