//! Quickstart: one Transactional Component, one Data Component,
//! transactions with crash recovery.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use unbundled::core::{DcId, Key, TableId, TableSpec, TcId};
use unbundled::dc::DcConfig;
use unbundled::kernel::{single, TransportKind};
use unbundled::tc::{ReadConsistency, TcConfig};

fn main() {
    const ACCOUNTS: TableId = TableId(1);

    // A 1×1 deployment over the synchronous (multi-core) transport.
    let deployment = single(
        TcConfig::default(),
        DcConfig::default(),
        TransportKind::Inline,
        &[TableSpec::plain(ACCOUNTS, "accounts")],
    );
    let tc = deployment.tc(TcId(1));

    // A transaction: two inserts, committed atomically.
    let txn = tc.begin().unwrap();
    tc.insert(txn, ACCOUNTS, Key::from_u64(1), b"alice=100".to_vec())
        .unwrap();
    tc.insert(txn, ACCOUNTS, Key::from_u64(2), b"bob=50".to_vec())
        .unwrap();
    tc.commit(txn).unwrap();
    println!("committed two accounts");

    // A transfer that fails mid-way is rolled back by inverse operations.
    let doomed = tc.begin().unwrap();
    tc.update(doomed, ACCOUNTS, Key::from_u64(1), b"alice=0".to_vec())
        .unwrap();
    tc.abort(doomed).unwrap();
    println!("aborted transfer rolled back");

    // Crash both components; recovery replays the logical log.
    deployment.crash_all();
    deployment.reboot_all();
    let tc = deployment.tc(TcId(1));
    let txn = tc.begin().unwrap();
    let alice = tc
        .read(txn, ACCOUNTS, Key::from_u64(1), ReadConsistency::Locking)
        .unwrap();
    let bob = tc
        .read(txn, ACCOUNTS, Key::from_u64(2), ReadConsistency::Locking)
        .unwrap();
    tc.commit(txn).unwrap();
    println!(
        "after crash+recovery: alice={:?} bob={:?}",
        String::from_utf8_lossy(&alice.unwrap()),
        String::from_utf8_lossy(&bob.unwrap()),
    );

    let snap = deployment.dc(DcId(1)).engine().stats().snapshot();
    println!(
        "DC stats: {} ops applied, {} duplicates suppressed, {} splits",
        snap.ops_applied, snap.duplicates_suppressed, snap.splits
    );

    // The merged metrics registry decomposes commit latency by stage.
    // Give the log device a realistic 100 µs fsync so the force stage
    // is visible, and run a few transfers to populate the histograms.
    deployment
        .tc_log(TcId(1))
        .set_force_latency(std::time::Duration::from_micros(100));
    for i in 0..20 {
        let txn = tc.begin().unwrap();
        tc.update(
            txn,
            ACCOUNTS,
            Key::from_u64(1 + i % 2),
            format!("balance={i}").into_bytes(),
        )
        .unwrap();
        tc.commit(txn).unwrap();
    }
    let obs = deployment.observe();
    println!(
        "commit-path breakdown over {} commits (p50, µs):",
        obs.histogram("tc.commit_ns").map_or(0, |h| h.count())
    );
    for (label, metric) in [
        ("lock wait", "tc.commit_stage.lock_wait_ns"),
        ("gather wait", "tc.commit_stage.gather_wait_ns"),
        ("log force", "tc.commit_stage.force_ns"),
        ("dc apply", "tc.commit_stage.dc_apply_ns"),
        ("2pc", "tc.commit_stage.twopc_ns"),
        ("end-to-end", "tc.commit_ns"),
    ] {
        let p50 = obs
            .histogram(metric)
            .map_or(0.0, |h| h.p50().as_secs_f64() * 1e6);
        println!("  {label:<12} {p50:>8.1}");
    }
}
