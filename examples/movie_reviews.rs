//! The paper's Figure 2 cloud scenario: an online movie site with
//! user-partitioned updating TCs (TC1/TC2), a read-only TC (TC3), and
//! three DCs — Movies/Reviews partitioned by movie on DC1/DC2,
//! Users/MyReviews partitioned by user on DC3.
//!
//! Demonstrates all four workloads (W1–W4), read-committed sharing over
//! versioned data, and that the whole thing runs without any two-phase
//! commit.
//!
//! ```sh
//! cargo run --example movie_reviews
//! ```

use std::time::Instant;
use unbundled::core::ReadFlavor;
use unbundled::kernel::harness::ops_per_sec;
use unbundled::kernel::scenarios::{MovieSite, TC_EVEN};
use unbundled::kernel::TransportKind;

fn main() {
    let site = MovieSite::build(TransportKind::Inline, 500);
    site.seed_movies(100).unwrap();
    site.seed_users(50).unwrap();
    println!("seeded 100 movies, 50 users across 3 DCs / 2 updating TCs");

    // W2: users post reviews (each transaction touches two DCs, no 2PC).
    let start = Instant::now();
    let mut w2 = 0u64;
    for u in 0..50u64 {
        for m in (u % 10)..100u64 {
            if (m + u) % 7 == 0 {
                site.w2_add_review(u, m, format!("user {u} on movie {m}: ★★★★").as_bytes())
                    .unwrap();
                w2 += 1;
            }
        }
    }
    println!(
        "W2: posted {w2} reviews ({:.0} txns/s)",
        ops_per_sec(w2, start.elapsed())
    );

    // W3: profile updates.
    for u in 0..50u64 {
        site.w3_update_profile(u, format!("bio of {u} v2").as_bytes())
            .unwrap();
    }
    println!("W3: updated 50 profiles");

    // W1: all reviews for a movie (read-committed; never blocks).
    let start = Instant::now();
    let mut read = 0u64;
    for m in 0..100u64 {
        read += site
            .w1_reviews_for_movie(m, ReadFlavor::Committed)
            .unwrap()
            .len() as u64;
    }
    println!(
        "W1: read {read} reviews across 100 movies ({:.0} reviews/s, single-DC each)",
        ops_per_sec(read, start.elapsed())
    );

    // W4: all reviews by a user (single MyReviews partition).
    let mine = site.w4_reviews_by_user(7).unwrap();
    println!("W4: user 7 wrote {} reviews", mine.len());

    // Crash the even-user TC mid-flight; the odd TC keeps serving.
    site.deployment.crash_tc(TC_EVEN);
    site.w2_add_review(1, 3, b"posted while TC1 is down")
        .unwrap();
    site.deployment.reboot_tc(TC_EVEN);
    site.w2_add_review(0, 3, b"posted after TC1 recovered")
        .unwrap();
    println!(
        "after TC1 crash+recovery movie 3 has {} reviews",
        site.w1_reviews_for_movie(3, ReadFlavor::Committed)
            .unwrap()
            .len()
    );

    for tc in [
        unbundled::kernel::scenarios::TC_EVEN,
        unbundled::kernel::scenarios::TC_ODD,
    ] {
        let s = site.deployment.tc(tc).stats().snapshot();
        println!(
            "{tc:?}: {} commits, {} ops sent, {} resends",
            s.commits, s.ops_sent, s.resends
        );
    }
}
