//! Section 5.3: partial failures. A DC crash, a TC crash, and a complete
//! failure — each followed by the paper's recovery protocol, with the
//! relevant counters printed.
//!
//! ```sh
//! cargo run --example partial_failures
//! ```

use unbundled::core::{DcId, Key, TableId, TableSpec, TcId};
use unbundled::dc::DcConfig;
use unbundled::kernel::{single, TransportKind};
use unbundled::tc::{ReadConsistency, TcConfig};

const T: TableId = TableId(1);

fn main() {
    let d = single(
        TcConfig::default(),
        DcConfig {
            page_capacity: 1024,
            ..Default::default()
        },
        TransportKind::Inline,
        &[TableSpec::plain(T, "t")],
    );
    let tc = d.tc(TcId(1));

    // Load committed data.
    for k in 0..200u64 {
        let t = tc.begin().unwrap();
        tc.insert(t, T, Key::from_u64(k), format!("v{k}").into_bytes())
            .unwrap();
        tc.commit(t).unwrap();
    }
    println!("loaded 200 committed rows");

    // ---- DC failure (Section 5.3.2, "DC Failure") -------------------
    let active = tc.begin().unwrap();
    tc.insert(active, T, Key::from_u64(1000), b"in-flight".to_vec())
        .unwrap();
    d.crash_dc(DcId(1));
    println!("\nDC crashed: cache + unforced DC-log tail lost");
    d.reboot_dc(DcId(1));
    let snap = tc.stats().snapshot();
    println!(
        "DC rebooted: structures recovered locally, then TC resent {} operations from the RSSP",
        snap.redo_resends
    );
    // The active transaction simply continues.
    tc.insert(active, T, Key::from_u64(1001), b"in-flight-2".to_vec())
        .unwrap();
    tc.commit(active).unwrap();
    println!("the in-flight transaction committed after recovery");

    // ---- TC failure (Section 5.3.2, "TC Failure") -------------------
    let loser = tc.begin().unwrap();
    tc.update(loser, T, Key::from_u64(0), b"doomed".to_vec())
        .unwrap();
    d.crash_tc(TcId(1));
    println!("\nTC crashed: log tail + transaction state lost");
    d.reboot_tc(TcId(1));
    let tc = d.tc(TcId(1));
    let dc_snap = d.dc(DcId(1)).engine().stats().snapshot();
    println!(
        "TC rebooted: DC reset {} cached pages (exactly those whose abLSNs \
         include operations beyond the stable log), {} records touched",
        dc_snap.pages_reset, dc_snap.records_reset
    );
    let t = tc.begin().unwrap();
    let v = tc
        .read(t, T, Key::from_u64(0), ReadConsistency::Locking)
        .unwrap();
    tc.commit(t).unwrap();
    println!(
        "key 0 after recovery: {:?} (loser update gone)",
        String::from_utf8_lossy(&v.unwrap())
    );

    // ---- Complete failure -------------------------------------------
    d.crash_all();
    println!("\ncomplete failure (both components)");
    d.reboot_all();
    let tc = d.tc(TcId(1));
    let t = tc.begin().unwrap();
    let n = tc.scan(t, T, Key::empty(), None, None).unwrap().len();
    tc.commit(t).unwrap();
    println!("recovered: {n} rows (200 loads + 2 in-flight inserts)");

    // ---- Checkpoint bounds future recovery --------------------------
    let rssp = tc.checkpoint().unwrap();
    println!(
        "\ncheckpoint granted RSSP {rssp}; contract termination: the TC may stop \
              resending everything below it"
    );
    d.crash_all();
    d.reboot_all();
    let tc = d.tc(TcId(1));
    println!(
        "recovery after checkpoint resent only {} operations",
        tc.stats().snapshot().redo_resends
    );
}
